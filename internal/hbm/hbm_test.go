package hbm

import (
	"bytes"
	"testing"
)

// seq issues commands back to back at their earliest legal cycles.
type seq struct {
	t   *testing.T
	p   *PseudoChannel
	now int64
}

func (s *seq) issue(cmd Command) IssueResult {
	s.t.Helper()
	at, err := s.p.EarliestIssue(cmd, s.now)
	if err != nil {
		s.t.Fatalf("EarliestIssue(%s): %v", cmd, err)
	}
	res, err := s.p.Issue(cmd, at)
	if err != nil {
		s.t.Fatalf("Issue(%s) at %d: %v", cmd, at, err)
	}
	s.now = at
	return res
}

func (s *seq) issueErr(cmd Command) error {
	s.t.Helper()
	at, err := s.p.EarliestIssue(cmd, s.now)
	if err != nil {
		return err
	}
	_, err = s.p.Issue(cmd, at)
	return err
}

func newTestPCH(t *testing.T, cfg Config) *seq {
	t.Helper()
	dev, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &seq{t: t, p: dev.PCH(0)}
}

func TestTimingPresets(t *testing.T) {
	for _, mhz := range []int{1000, 1200} {
		tm := HBM2Timing(mhz)
		if err := tm.Validate(); err != nil {
			t.Errorf("HBM2Timing(%d): %v", mhz, err)
		}
	}
	t1000 := HBM2Timing(1000)
	t1200 := HBM2Timing(1200)
	if t1000.TCKps != 1000 || t1200.TCKps != 833 {
		t.Errorf("tCK: %d, %d", t1000.TCKps, t1200.TCKps)
	}
	// Nanosecond-class parameters scale up in cycles at higher frequency.
	if t1200.RCD <= t1000.RCD {
		t.Errorf("tRCD did not scale: %d vs %d", t1200.RCD, t1000.RCD)
	}
	// Cycle-class parameters do not scale.
	if t1200.CCDL != t1000.CCDL || t1200.BL != t1000.BL {
		t.Error("tCCD_L/BL must be frequency independent")
	}
}

func TestConfigBandwidths(t *testing.T) {
	c := HBM2Config(1000)
	if got := c.OffChipGBps(); got != 256 {
		t.Errorf("HBM2 off-chip = %v GB/s, want 256", got)
	}
	p := PIMHBMConfig(1000)
	if got := p.OnChipGBps(); got < 1023.9 || got > 1024.1 {
		t.Errorf("PIM-HBM on-chip = %v GB/s, want 1024 (Table V: 1TB/s)", got)
	}
	p12 := PIMHBMConfig(1200)
	if got := p12.OffChipGBps(); got < 307 || got > 308 {
		t.Errorf("PIM-HBM off-chip at 1.2GHz = %v GB/s, want ~307.2 (Table V)", got)
	}
	if got := p12.OnChipGBps(); got < 1228 || got > 1230 {
		t.Errorf("PIM-HBM on-chip at 1.2GHz = %v GB/s, want ~1229 (Table V)", got)
	}
	// The on-chip : off-chip ratio of the product is 4x (8 units x 32B per
	// tCCD_L vs 32B per tCCD_S).
	if r := p.OnChipGBps() / p.OffChipGBps(); r < 3.99 || r > 4.01 {
		t.Errorf("on/off ratio = %v, want 4", r)
	}
}

func TestConfigCapacity(t *testing.T) {
	if got := HBM2Config(1000).DeviceBytes(); got != 4<<30 {
		t.Errorf("HBM2 device = %d bytes, want 4 GiB (4 x 8Gb dies)", got)
	}
	if got := PIMHBMConfig(1000).DeviceBytes(); got != 2<<30 {
		t.Errorf("PIM-HBM PIM-die capacity = %d bytes, want 2 GiB (4 x 4Gb dies)", got)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := HBM2Config(1000)
	bad.PIMUnits = 3 // does not divide 16 banks
	if err := bad.Validate(); err == nil {
		t.Error("3 PIM units accepted")
	}
	bad = HBM2Config(1000)
	bad.Variant = Variant2BA
	if err := bad.Validate(); err == nil {
		t.Error("DSE variant without PIM units accepted")
	}
	bad = HBM2Config(1000)
	bad.RowBytes = 100
	if err := bad.Validate(); err == nil {
		t.Error("unaligned row size accepted")
	}
}

func TestActToReadRespectsTRCD(t *testing.T) {
	s := newTestPCH(t, HBM2Config(1000))
	tm := s.p.cfg.Timing
	s.issue(Command{Kind: CmdACT, BG: 0, Bank: 0, Row: 5})
	at, err := s.p.EarliestIssue(Command{Kind: CmdRD, BG: 0, Bank: 0, Col: 0}, s.now)
	if err != nil {
		t.Fatal(err)
	}
	if at != int64(tm.RCD) {
		t.Errorf("first RD at %d, want tRCD=%d", at, tm.RCD)
	}
	// Issuing earlier must be rejected.
	if _, err := s.p.Issue(Command{Kind: CmdRD, BG: 0, Bank: 0, Col: 0}, at-1); err == nil {
		t.Error("RD before tRCD accepted")
	}
}

func TestColumnCadence(t *testing.T) {
	s := newTestPCH(t, HBM2Config(1000))
	tm := s.p.cfg.Timing
	s.issue(Command{Kind: CmdACT, BG: 0, Bank: 0, Row: 1})
	s.issue(Command{Kind: CmdACT, BG: 1, Bank: 0, Row: 1})
	r1 := s.issue(Command{Kind: CmdRD, BG: 0, Bank: 0})
	// Same bank group: tCCD_L apart.
	r2 := s.issue(Command{Kind: CmdRD, BG: 0, Bank: 0})
	if r2.Cycle-r1.Cycle != int64(tm.CCDL) {
		t.Errorf("same-BG column gap %d, want tCCD_L=%d", r2.Cycle-r1.Cycle, tm.CCDL)
	}
	// Different bank group: tCCD_S after the last column.
	r3 := s.issue(Command{Kind: CmdRD, BG: 1, Bank: 0})
	if r3.Cycle-r2.Cycle != int64(tm.CCDS) {
		t.Errorf("cross-BG column gap %d, want tCCD_S=%d", r3.Cycle-r2.Cycle, tm.CCDS)
	}
}

func TestFourActivateWindow(t *testing.T) {
	s := newTestPCH(t, HBM2Config(1000))
	tm := s.p.cfg.Timing
	var times [5]int64
	for i := 0; i < 5; i++ {
		res := s.issue(Command{Kind: CmdACT, BG: i % 4, Bank: i / 4, Row: 0})
		times[i] = res.Cycle
	}
	if got := times[4] - times[0]; got < int64(tm.FAW) {
		t.Errorf("5th ACT only %d cycles after 1st, want >= tFAW=%d", got, tm.FAW)
	}
}

func TestRowCyclePreActRead(t *testing.T) {
	s := newTestPCH(t, HBM2Config(1000))
	tm := s.p.cfg.Timing
	a1 := s.issue(Command{Kind: CmdACT, BG: 0, Bank: 0, Row: 1})
	p1 := s.issue(Command{Kind: CmdPRE, BG: 0, Bank: 0})
	if p1.Cycle-a1.Cycle < int64(tm.RAS) {
		t.Errorf("PRE %d cycles after ACT, want >= tRAS=%d", p1.Cycle-a1.Cycle, tm.RAS)
	}
	a2 := s.issue(Command{Kind: CmdACT, BG: 0, Bank: 0, Row: 2})
	if a2.Cycle-p1.Cycle < int64(tm.RP) {
		t.Errorf("ACT %d cycles after PRE, want >= tRP=%d", a2.Cycle-p1.Cycle, tm.RP)
	}
	if a2.Cycle-a1.Cycle < int64(tm.RC) {
		t.Errorf("ACT-to-ACT %d cycles, want >= tRC=%d", a2.Cycle-a1.Cycle, tm.RC)
	}
}

func TestIllegalSequences(t *testing.T) {
	s := newTestPCH(t, HBM2Config(1000))
	if err := s.issueErr(Command{Kind: CmdRD, BG: 0, Bank: 0}); err == nil {
		t.Error("RD to idle bank accepted")
	}
	if err := s.issueErr(Command{Kind: CmdPRE, BG: 0, Bank: 0}); err == nil {
		t.Error("PRE to idle bank accepted")
	}
	s.issue(Command{Kind: CmdACT, BG: 0, Bank: 0, Row: 1})
	if err := s.issueErr(Command{Kind: CmdACT, BG: 0, Bank: 0, Row: 2}); err == nil {
		t.Error("ACT to open bank accepted")
	}
	if err := s.issueErr(Command{Kind: CmdACT, BG: 9, Bank: 0, Row: 0}); err == nil {
		t.Error("out-of-range bank group accepted")
	}
	if err := s.issueErr(Command{Kind: CmdRD, BG: 0, Bank: 0, Col: 9999}); err == nil {
		t.Error("out-of-range column accepted")
	}
	if err := s.issueErr(Command{Kind: CmdACT, BG: 1, Bank: 0, Row: 1 << 30}); err == nil {
		t.Error("out-of-range row accepted")
	}
}

func TestWriteReadData(t *testing.T) {
	s := newTestPCH(t, HBM2Config(1000))
	payload := bytes.Repeat([]byte{0xAB, 0xCD}, 16)
	s.issue(Command{Kind: CmdACT, BG: 2, Bank: 3, Row: 7})
	s.issue(Command{Kind: CmdWR, BG: 2, Bank: 3, Col: 5, Data: payload})
	res := s.issue(Command{Kind: CmdRD, BG: 2, Bank: 3, Col: 5})
	if !bytes.Equal(res.Data, payload) {
		t.Fatalf("read back %x", res.Data)
	}
	// Another column of the same row is still zero.
	res = s.issue(Command{Kind: CmdRD, BG: 2, Bank: 3, Col: 6})
	if !bytes.Equal(res.Data, make([]byte, 32)) {
		t.Fatalf("untouched column = %x", res.Data)
	}
	// Data persists across PRE and re-ACT.
	s.issue(Command{Kind: CmdPRE, BG: 2, Bank: 3})
	s.issue(Command{Kind: CmdACT, BG: 2, Bank: 3, Row: 7})
	res = s.issue(Command{Kind: CmdRD, BG: 2, Bank: 3, Col: 5})
	if !bytes.Equal(res.Data, payload) {
		t.Fatalf("after reopen: %x", res.Data)
	}
}

func TestRefreshBlocksBank(t *testing.T) {
	s := newTestPCH(t, HBM2Config(1000))
	tm := s.p.cfg.Timing
	ref := s.issue(Command{Kind: CmdREF})
	act, err := s.p.EarliestIssue(Command{Kind: CmdACT, BG: 0, Bank: 0, Row: 0}, s.now)
	if err != nil {
		t.Fatal(err)
	}
	if act-ref.Cycle < int64(tm.RFC) {
		t.Errorf("ACT %d cycles after REF, want >= tRFC=%d", act-ref.Cycle, tm.RFC)
	}
	// REF with an open bank is illegal.
	s.now = act
	s.issue(Command{Kind: CmdACT, BG: 0, Bank: 0, Row: 0})
	if err := s.issueErr(Command{Kind: CmdREF}); err == nil {
		t.Error("REF with open bank accepted")
	}
}

func TestStatsCounting(t *testing.T) {
	s := newTestPCH(t, HBM2Config(1000))
	s.issue(Command{Kind: CmdACT, BG: 0, Bank: 0, Row: 1})
	s.issue(Command{Kind: CmdWR, BG: 0, Bank: 0, Col: 0, Data: make([]byte, 32)})
	s.issue(Command{Kind: CmdRD, BG: 0, Bank: 0, Col: 0})
	s.issue(Command{Kind: CmdPRE, BG: 0, Bank: 0})
	st := s.p.Stats()
	if st.ACT != 1 || st.WR != 1 || st.RD != 1 || st.PRE != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.OffChipBytes != 64 {
		t.Errorf("off-chip bytes = %d, want 64", st.OffChipBytes)
	}
	if st.BankReads != 1 || st.BankWrites != 1 {
		t.Errorf("bank traffic = %d/%d", st.BankReads, st.BankWrites)
	}
	s.p.ResetStats()
	if s.p.Stats() != (Stats{}) {
		t.Error("ResetStats did not zero")
	}
}

// enterAB drives the ACT+PRE handshake on the ABMR address.
func enterAB(s *seq) {
	s.issue(Command{Kind: CmdACT, BG: 0, Bank: abmrBank, Row: s.p.cfg.ModeRow()})
	s.issue(Command{Kind: CmdPRE, BG: 0, Bank: abmrBank})
}

// exitAB drives the ACT+PRE handshake on the SBMR address.
func exitAB(s *seq) {
	s.issue(Command{Kind: CmdACT, BG: 0, Bank: sbmrBank, Row: s.p.cfg.ModeRow()})
	s.issue(Command{Kind: CmdPRE, BG: 0, Bank: sbmrBank})
}

func TestModeTransitions(t *testing.T) {
	s := newTestPCH(t, PIMHBMConfig(1000))
	if s.p.Mode() != ModeSB {
		t.Fatal("initial mode not SB")
	}
	enterAB(s)
	if s.p.Mode() != ModeAB {
		t.Fatalf("after ABMR handshake: %s", s.p.Mode())
	}
	exitAB(s)
	if s.p.Mode() != ModeSB {
		t.Fatalf("after SBMR handshake: %s", s.p.Mode())
	}
	if got := s.p.Stats().ModeSwitches; got != 2 {
		t.Errorf("mode switches = %d, want 2", got)
	}
}

func TestOrdinaryActPreDoesNotSwitchMode(t *testing.T) {
	s := newTestPCH(t, HBM2Config(1000))
	// ACT+PRE on a normal row of bank 0 must not enter AB mode.
	s.issue(Command{Kind: CmdACT, BG: 0, Bank: 0, Row: 42})
	s.issue(Command{Kind: CmdPRE, BG: 0, Bank: 0})
	if s.p.Mode() != ModeSB {
		t.Fatalf("mode changed by ordinary traffic: %s", s.p.Mode())
	}
}

func TestABBroadcastWriteAndRead(t *testing.T) {
	s := newTestPCH(t, PIMHBMConfig(1000))
	enterAB(s)
	payload := bytes.Repeat([]byte{0x11, 0x22}, 16)
	s.issue(Command{Kind: CmdACT, Row: 9}) // broadcast ACT
	s.issue(Command{Kind: CmdWR, Col: 3, Data: payload})
	res := s.issue(Command{Kind: CmdRD, Col: 3})
	if !bytes.Equal(res.Data, payload) {
		t.Fatalf("AB read back %x", res.Data)
	}
	st := s.p.Stats()
	if st.ABACT != 1 || st.ABWR != 1 || st.ABRD != 1 {
		t.Errorf("AB stats: %+v", st)
	}
	if st.BankWrites != 16 {
		t.Errorf("broadcast write touched %d banks, want 16", st.BankWrites)
	}
	// Exit requires all rows closed first.
	s.issue(Command{Kind: CmdPREA})
	exitAB(s)
	// In SB mode every bank now holds the broadcast data.
	for _, bk := range []struct{ bg, b int }{{0, 0}, {1, 2}, {3, 3}} {
		s.issue(Command{Kind: CmdACT, BG: bk.bg, Bank: bk.b, Row: 9})
		r := s.issue(Command{Kind: CmdRD, BG: bk.bg, Bank: bk.b, Col: 3})
		if !bytes.Equal(r.Data, payload) {
			t.Errorf("bank bg%d b%d: %x", bk.bg, bk.b, r.Data)
		}
		s.issue(Command{Kind: CmdPRE, BG: bk.bg, Bank: bk.b})
	}
}

func TestABColumnCadenceIsCCDL(t *testing.T) {
	s := newTestPCH(t, PIMHBMConfig(1000))
	tm := s.p.cfg.Timing
	enterAB(s)
	s.issue(Command{Kind: CmdACT, Row: 0})
	r1 := s.issue(Command{Kind: CmdRD, Col: 0})
	r2 := s.issue(Command{Kind: CmdRD, Col: 1})
	if r2.Cycle-r1.Cycle != int64(tm.CCDL) {
		t.Errorf("AB column gap %d, want tCCD_L=%d (Section III-B)", r2.Cycle-r1.Cycle, tm.CCDL)
	}
}

func TestBroadcastActToModeRowIllegal(t *testing.T) {
	s := newTestPCH(t, PIMHBMConfig(1000))
	enterAB(s)
	if err := s.issueErr(Command{Kind: CmdACT, BG: 2, Bank: 2, Row: s.p.cfg.ModeRow()}); err == nil {
		t.Error("broadcast ACT to mode row accepted")
	}
}

// fakeExec records executor interactions for device-level tests.
type fakeExec struct {
	regWrites map[RegSpace]map[int][]uint32 // space -> unit -> cols
	triggers  []TriggerContext
	resets    int
	readBack  byte
}

func newFakeExec() *fakeExec {
	return &fakeExec{regWrites: map[RegSpace]map[int][]uint32{}}
}

func (f *fakeExec) RegisterWrite(unit int, space RegSpace, col uint32, data []byte) error {
	m := f.regWrites[space]
	if m == nil {
		m = map[int][]uint32{}
		f.regWrites[space] = m
	}
	m[unit] = append(m[unit], col)
	return nil
}

func (f *fakeExec) RegisterRead(unit int, space RegSpace, col uint32, buf []byte) error {
	for i := range buf {
		buf[i] = f.readBack
	}
	return nil
}

func (f *fakeExec) Trigger(ctx *TriggerContext) (TriggerInfo, error) {
	f.triggers = append(f.triggers, *ctx)
	return TriggerInfo{Instructions: 8, Arithmetic: 8}, nil
}

func (f *fakeExec) ResetPPC() { f.resets++ }

func setPIMOp(s *seq, on bool) {
	v := byte(0)
	if on {
		v = 1
	}
	data := make([]byte, 32)
	data[0] = v
	s.issue(Command{Kind: CmdACT, BG: 0, Bank: abmrBank, Row: s.p.cfg.ModeRow()})
	s.issue(Command{Kind: CmdWR, BG: 0, Bank: abmrBank, Col: ColPIMOpMode, Data: data})
	s.issue(Command{Kind: CmdPRE, BG: 0, Bank: abmrBank})
}

func TestABPIMFullFlow(t *testing.T) {
	s := newTestPCH(t, PIMHBMConfig(1000))
	exec := newFakeExec()
	s.p.AttachPIM(exec)

	enterAB(s)

	// Program the CRF: broadcast writes on the CRF row reach each of the 8
	// units exactly once per column.
	s.issue(Command{Kind: CmdACT, Row: s.p.cfg.CRFRow()})
	s.issue(Command{Kind: CmdWR, Col: 0, Data: make([]byte, 32)})
	s.issue(Command{Kind: CmdWR, Col: 1, Data: make([]byte, 32)})
	s.issue(Command{Kind: CmdPREA})
	if got := len(exec.regWrites[RegCRF]); got != 8 {
		t.Fatalf("CRF writes reached %d units, want 8", got)
	}
	for u, cols := range exec.regWrites[RegCRF] {
		if len(cols) != 2 {
			t.Errorf("unit %d received %d CRF writes, want 2", u, len(cols))
		}
	}

	// Entering AB-PIM (note: entering AB-PIM resets the PPCs).
	setPIMOp(s, true)
	if s.p.Mode() != ModeABPIM || exec.resets != 1 {
		t.Fatalf("mode=%s resets=%d", s.p.Mode(), exec.resets)
	}

	// Trigger four instructions: RD even, RD odd, WR even, WR odd.
	s.issue(Command{Kind: CmdACT, Row: 11})
	s.issue(Command{Kind: CmdRD, Bank: 0, Col: 4})
	s.issue(Command{Kind: CmdRD, Bank: 1, Col: 5})
	s.issue(Command{Kind: CmdWR, Bank: 0, Col: 6, Data: make([]byte, 32)})
	s.issue(Command{Kind: CmdWR, Bank: 1, Col: 7, Data: make([]byte, 32)})
	if len(exec.triggers) != 4 {
		t.Fatalf("%d triggers, want 4", len(exec.triggers))
	}
	wants := []struct {
		kind CmdKind
		sel  int
		col  uint32
	}{{CmdRD, 0, 4}, {CmdRD, 1, 5}, {CmdWR, 0, 6}, {CmdWR, 1, 7}}
	for i, w := range wants {
		tr := exec.triggers[i]
		if tr.Kind != w.kind || tr.BankSel != w.sel || tr.Col != w.col || tr.Row != 11 {
			t.Errorf("trigger %d = %+v, want %+v row 11", i, tr, w)
		}
	}
	st := s.p.Stats()
	if st.PIMInstr != 32 || st.PIMArith != 32 {
		t.Errorf("PIM instruction stats: %+v", st)
	}

	// Leave AB-PIM, then AB.
	s.issue(Command{Kind: CmdPREA})
	setPIMOp(s, false)
	if s.p.Mode() != ModeAB {
		t.Fatalf("mode after PIM_OP_MODE=0: %s", s.p.Mode())
	}
	exitAB(s)
	if s.p.Mode() != ModeSB {
		t.Fatalf("final mode: %s", s.p.Mode())
	}
}

func TestPIMOpModeRequiresAB(t *testing.T) {
	s := newTestPCH(t, PIMHBMConfig(1000))
	s.p.AttachPIM(newFakeExec())
	data := make([]byte, 32)
	data[0] = 1
	s.issue(Command{Kind: CmdACT, BG: 0, Bank: abmrBank, Row: s.p.cfg.ModeRow()})
	if err := s.issueErr(Command{Kind: CmdWR, BG: 0, Bank: abmrBank, Col: ColPIMOpMode, Data: data}); err == nil {
		t.Error("PIM_OP_MODE=1 accepted in SB mode")
	}
}

func TestABPIMWithoutExecutorFails(t *testing.T) {
	s := newTestPCH(t, PIMHBMConfig(1000))
	enterAB(s)
	data := make([]byte, 32)
	data[0] = 1
	s.issue(Command{Kind: CmdACT, BG: 0, Bank: abmrBank, Row: s.p.cfg.ModeRow()})
	if err := s.issueErr(Command{Kind: CmdWR, BG: 0, Bank: abmrBank, Col: ColPIMOpMode, Data: data}); err == nil {
		t.Error("AB-PIM entered with no executor attached")
	}
}

func TestSBRegisterAccessPerUnit(t *testing.T) {
	s := newTestPCH(t, PIMHBMConfig(1000))
	exec := newFakeExec()
	exec.readBack = 0x5A
	s.p.AttachPIM(exec)
	// In SB mode a GRF-row access on bank 5 (bg1, b1) reaches only unit 2
	// (banks 4-5).
	s.issue(Command{Kind: CmdACT, BG: 1, Bank: 1, Row: s.p.cfg.GRFRow()})
	s.issue(Command{Kind: CmdWR, BG: 1, Bank: 1, Col: 0, Data: make([]byte, 32)})
	res := s.issue(Command{Kind: CmdRD, BG: 1, Bank: 1, Col: 0})
	if res.Data[0] != 0x5A {
		t.Errorf("register read returned %x", res.Data[0])
	}
	if got := exec.regWrites[RegGRF]; len(got) != 1 || len(got[2]) != 1 {
		t.Errorf("GRF writes: %+v, want exactly unit 2", got)
	}
}

func TestDeviceConstruction(t *testing.T) {
	d, err := NewDevice(PIMHBMConfig(1200))
	if err != nil {
		t.Fatal(err)
	}
	if d.NumPCH() != 16 {
		t.Errorf("pCH count %d", d.NumPCH())
	}
	if _, err := NewDevice(Config{}); err == nil {
		t.Error("zero config accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("PCH out of range did not panic")
		}
	}()
	d.PCH(99)
}

func TestDeviceStatsAggregation(t *testing.T) {
	d := MustNewDevice(HBM2Config(1000))
	for i := 0; i < 3; i++ {
		s := &seq{t: t, p: d.PCH(i)}
		s.issue(Command{Kind: CmdACT, BG: 0, Bank: 0, Row: 1})
		s.issue(Command{Kind: CmdRD, BG: 0, Bank: 0, Col: 0})
	}
	st := d.Stats()
	if st.ACT != 3 || st.RD != 3 {
		t.Errorf("aggregated stats: %+v", st)
	}
	d.ResetStats()
	if d.Stats() != (Stats{}) {
		t.Error("ResetStats did not clear")
	}
}

func TestWriteToReadTurnaround(t *testing.T) {
	s := newTestPCH(t, HBM2Config(1000))
	tm := s.p.cfg.Timing
	s.issue(Command{Kind: CmdACT, BG: 0, Bank: 0, Row: 0})
	w := s.issue(Command{Kind: CmdWR, BG: 0, Bank: 0, Col: 0, Data: make([]byte, 32)})
	r := s.issue(Command{Kind: CmdRD, BG: 0, Bank: 0, Col: 1})
	minGap := int64(tm.WL + tm.BL/2 + tm.WTRL)
	if r.Cycle-w.Cycle < minGap {
		t.Errorf("WR->RD gap %d, want >= %d", r.Cycle-w.Cycle, minGap)
	}
}

// Package engine provides the execution engines that drive per-pseudo-
// channel kernel work. Every pseudo channel is an independent machine —
// its own clock, banks, PIM units, metrics shard and timeline buffer —
// so a kernel's per-channel command streams can run in any order, or
// concurrently, and produce bit-for-bit identical state. The engine is
// the policy layer that picks the order: Serial replays channels one
// after another on the caller's goroutine (the determinism oracle),
// Parallel dispatches each channel to a persistent worker pinned to it.
//
// The join point at the end of Run is the cycle barrier: no caller
// observes channel state until every channel's stream has quiesced, so
// cross-channel reads (SyncChannels, metrics collection, result
// readout) always see a consistent frontier.
package engine

import (
	"fmt"
	"strings"
	"sync"
)

// Engine runs one kernel's channel work. Implementations are not safe
// for concurrent Run calls on the same value: a kernel owns its runtime
// (and therefore its engine) for the duration of a launch, mirroring
// how a leased shard owns its channels.
type Engine interface {
	// Run invokes fn(ch) for every ch in [0, n) and returns only after
	// all invocations finished (the result-join barrier). The error
	// reported is the lowest-channel error, matching the sequential
	// engine's "first error wins" order.
	Run(n int, fn func(ch int) error) error
	// Name identifies the engine for flags and logs.
	Name() string
	// Close releases engine resources (worker goroutines). Run must not
	// be called after Close. Close is idempotent.
	Close()
}

// Names lists the valid engine names, in the order flags document them.
func Names() []string { return []string{"serial", "parallel"} }

// Validate rejects anything that is not a known engine name. Commands
// call it right after flag parsing so a typo'd -engine fails before any
// device setup, not halfway through shard construction.
func Validate(name string) error {
	for _, n := range Names() {
		if name == n {
			return nil
		}
	}
	return fmt.Errorf("engine: unknown engine %q (valid engines: %s)", name, strings.Join(Names(), ", "))
}

// New builds an engine by name: "serial" or "parallel". workers sizes
// the parallel pool (one worker per pseudo channel the system can run).
func New(name string, workers int) (Engine, error) {
	if err := Validate(name); err != nil {
		return nil, err
	}
	if name == "parallel" {
		return NewParallel(workers), nil
	}
	return Serial{}, nil
}

// Serial runs channels in index order on the caller's goroutine and
// stops at the first error. It is the reference ordering every other
// engine must be indistinguishable from.
type Serial struct{}

// Run implements Engine.
func (Serial) Run(n int, fn func(ch int) error) error {
	for ch := 0; ch < n; ch++ {
		if err := fn(ch); err != nil {
			return err
		}
	}
	return nil
}

// Name implements Engine.
func (Serial) Name() string { return "serial" }

// Close implements Engine.
func (Serial) Close() {}

// Parallel is a worker-per-pCH goroutine pool. Worker i owns channel i
// for the lifetime of the engine, so all of a channel's mutations happen
// on one goroutine and the per-channel single-writer contracts (metrics
// shards, timeline buffers, device scratch) hold without locks. Workers
// are persistent: dispatch is a channel send, not a goroutine spawn, so
// the serve path's many small kernels do not pay creation cost.
type Parallel struct {
	tasks []chan func(ch int) error
	errs  []error
	wg    sync.WaitGroup
	done  bool
}

// NewParallel builds a pool of `workers` pinned workers (grown on demand
// if a Run asks for more channels).
func NewParallel(workers int) *Parallel {
	p := &Parallel{}
	p.grow(workers)
	return p
}

func (p *Parallel) grow(n int) {
	for len(p.tasks) < n {
		ch := len(p.tasks)
		t := make(chan func(int) error, 1)
		p.tasks = append(p.tasks, t)
		p.errs = append(p.errs, nil)
		go p.worker(ch, t)
	}
}

func (p *Parallel) worker(ch int, t <-chan func(int) error) {
	for fn := range t {
		p.errs[ch] = fn(ch)
		p.wg.Done()
	}
}

// Run implements Engine. A single-channel kernel (the timing-only
// SimChannels=1 path) runs inline: there is nothing to overlap and the
// dispatch round trip would only add latency.
func (p *Parallel) Run(n int, fn func(ch int) error) error {
	if n <= 0 {
		return nil
	}
	if n == 1 {
		return fn(0)
	}
	p.grow(n)
	p.wg.Add(n)
	for ch := 0; ch < n; ch++ {
		p.tasks[ch] <- fn
	}
	p.wg.Wait() // the cycle barrier: all channels quiesced
	var first error
	for ch := 0; ch < n; ch++ {
		if p.errs[ch] != nil && first == nil {
			first = p.errs[ch]
		}
		p.errs[ch] = nil
	}
	return first
}

// Name implements Engine.
func (p *Parallel) Name() string { return "parallel" }

// Close implements Engine.
func (p *Parallel) Close() {
	if p.done {
		return
	}
	p.done = true
	for _, t := range p.tasks {
		close(t)
	}
}

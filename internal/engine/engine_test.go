package engine

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

func TestSerialOrderAndFirstError(t *testing.T) {
	var order []int
	err := Serial{}.Run(4, func(ch int) error {
		order = append(order, ch)
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, ch := range order {
		if ch != i {
			t.Fatalf("serial order %v, want 0..3", order)
		}
	}

	boom := errors.New("boom")
	ran := 0
	err = Serial{}.Run(4, func(ch int) error {
		ran++
		if ch == 1 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if ran != 2 {
		t.Fatalf("serial ran %d channels past the error, want stop at 2", ran)
	}
}

func TestParallelRunsAllChannels(t *testing.T) {
	p := NewParallel(8)
	defer p.Close()
	var hits [8]atomic.Int64
	for iter := 0; iter < 50; iter++ {
		if err := p.Run(8, func(ch int) error {
			hits[ch].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("Run: %v", err)
		}
	}
	for ch := range hits {
		if got := hits[ch].Load(); got != 50 {
			t.Fatalf("channel %d ran %d times, want 50", ch, got)
		}
	}
}

func TestParallelFirstErrorInChannelOrder(t *testing.T) {
	p := NewParallel(4)
	defer p.Close()
	e1, e3 := errors.New("ch1"), errors.New("ch3")
	err := p.Run(4, func(ch int) error {
		switch ch {
		case 1:
			return e1
		case 3:
			return e3
		}
		return nil
	})
	if !errors.Is(err, e1) {
		t.Fatalf("err = %v, want the lowest-channel error", err)
	}
	// The error slots must be cleared: a later clean Run reports nil.
	if err := p.Run(4, func(ch int) error { return nil }); err != nil {
		t.Fatalf("stale error leaked into next Run: %v", err)
	}
}

func TestParallelGrowsPastInitialSize(t *testing.T) {
	p := NewParallel(2)
	defer p.Close()
	var n atomic.Int64
	if err := p.Run(6, func(ch int) error {
		n.Add(1)
		return nil
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if n.Load() != 6 {
		t.Fatalf("ran %d, want 6", n.Load())
	}
}

func TestParallelSingleChannelRunsInline(t *testing.T) {
	p := NewParallel(1)
	defer p.Close()
	if err := p.Run(1, func(ch int) error {
		if ch != 0 {
			t.Fatalf("ch = %d", ch)
		}
		return nil
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestNewByName(t *testing.T) {
	for _, name := range Names() {
		e, err := New(name, 4)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if e.Name() != name {
			t.Fatalf("New(%q).Name() = %q", name, e.Name())
		}
		e.Close()
	}
}

// Unknown names — including the empty string, which used to silently
// fall back to serial — must be rejected, and the error must name every
// valid engine so the -engine flag's failure mode is self-explanatory.
func TestNewRejectsUnknownEngines(t *testing.T) {
	for _, name := range []string{"", "warp", "Serial", "parallel "} {
		if err := Validate(name); err == nil {
			t.Fatalf("Validate(%q) accepted an unknown engine", name)
		} else {
			for _, valid := range Names() {
				if !strings.Contains(err.Error(), valid) {
					t.Fatalf("Validate(%q) error %q does not list valid engine %q", name, err, valid)
				}
			}
		}
		if _, err := New(name, 4); err == nil {
			t.Fatalf("New(%q) accepted an unknown engine", name)
		}
	}
}

func TestParallelCloseIdempotent(t *testing.T) {
	p := NewParallel(2)
	p.Close()
	p.Close() // must not panic on double close
}

package pim

import (
	"fmt"

	"pimsim/internal/hbm"
	"pimsim/internal/isa"
	"pimsim/internal/obs"
)

// Executor holds the PIM execution units of one pseudo channel and drives
// them in lock step. It implements hbm.PIMExecutor.
//
// Lockstep is an invariant, not an approximation: register programming
// broadcasts identical CRF/SRF/GRF contents to every unit, a trigger
// steps every unit through the same command slot, and broadcast column
// commands require every bank active — so all units always share the
// same control state (PPC, loop counters, done flag, retirement
// counts). In timing-only mode the executor exploits this by stepping
// only unit 0 per trigger and deferring the mirror units' state until a
// reader needs it (see syncUnits); data-bearing functional runs step
// every unit, since their register contents diverge per bank.
type Executor struct {
	units        []*Unit
	banksPerUnit int
	triggers     int64

	// desync marks units [1, n) stale relative to unit 0 after lockstep
	// fast-path triggers; syncUnits repairs them before any readout.
	desync bool
	// cnt is the reusable access-counting adapter for the fast path, and
	// sc the reusable step context (both keep per-trigger state off the
	// stack so nothing is copied per command).
	cnt countingAccess
	sc  stepContext

	// TL, when set, records per-trigger retired-instruction counts into
	// the observability timeline (the Perfetto PIM-activity counter
	// track). Nil costs one pointer compare per trigger.
	TL *obs.ChannelTimeline
}

// countingAccess wraps a BankAccess and counts the accesses flowing
// through it, so one representative unit's bank traffic can be
// replicated for its lockstep mirrors.
type countingAccess struct {
	inner         hbm.BankAccess
	reads, writes int64
}

func (c *countingAccess) ReadBank(bankIdx int, col uint32, buf []byte) error {
	c.reads++
	return c.inner.ReadBank(bankIdx, col, buf)
}

func (c *countingAccess) WriteBank(bankIdx int, col uint32, data []byte) error {
	c.writes++
	return c.inner.WriteBank(bankIdx, col, data)
}

// NewExecutor builds the execution layer for a PIM device configuration.
func NewExecutor(cfg hbm.Config) (*Executor, error) {
	if cfg.PIMUnits <= 0 {
		return nil, fmt.Errorf("pim: configuration has no PIM units")
	}
	if cfg.Banks()%cfg.PIMUnits != 0 {
		return nil, fmt.Errorf("pim: %d units do not divide %d banks", cfg.PIMUnits, cfg.Banks())
	}
	grfEntries := isa.GRFEntries
	if cfg.Variant == hbm.Variant2X {
		grfEntries = 2 * isa.GRFEntries
	}
	e := &Executor{
		units:        make([]*Unit, cfg.PIMUnits),
		banksPerUnit: cfg.Banks() / cfg.PIMUnits,
	}
	for i := range e.units {
		e.units[i] = newUnit(grfEntries)
	}
	return e, nil
}

// Attach builds an executor and connects it to every pseudo channel of the
// device, returning one executor per channel.
func Attach(dev *hbm.Device) ([]*Executor, error) {
	execs := make([]*Executor, dev.NumPCH())
	for i := range execs {
		e, err := NewExecutor(dev.Config())
		if err != nil {
			return nil, err
		}
		dev.PCH(i).AttachPIM(e)
		execs[i] = e
	}
	return execs, nil
}

// Unit returns execution unit i (for result readout and tests).
func (e *Executor) Unit(i int) *Unit {
	e.syncUnits()
	return e.units[i]
}

// NumUnits returns the number of units.
func (e *Executor) NumUnits() int { return len(e.units) }

// RegisterWrite implements hbm.PIMExecutor.
func (e *Executor) RegisterWrite(unit int, space hbm.RegSpace, col uint32, data []byte) error {
	if unit < 0 || unit >= len(e.units) {
		return fmt.Errorf("pim: unit %d out of range", unit)
	}
	return e.units[unit].writeRegSpace(space, col, data)
}

// RegisterRead implements hbm.PIMExecutor.
func (e *Executor) RegisterRead(unit int, space hbm.RegSpace, col uint32, buf []byte) error {
	if unit < 0 || unit >= len(e.units) {
		return fmt.Errorf("pim: unit %d out of range", unit)
	}
	return e.units[unit].readRegSpace(space, col, buf)
}

// Trigger implements hbm.PIMExecutor: one column command advances every
// unit by one command slot. Timing-only devices take the lockstep fast
// path when the bank-access provider can account replicated traffic.
func (e *Executor) Trigger(ctx *hbm.TriggerContext) (hbm.TriggerInfo, error) {
	e.triggers++
	sc := &e.sc
	sc.kind = ctx.Kind
	sc.bankSel = ctx.BankSel
	sc.row = ctx.Row
	sc.col = ctx.Col
	sc.wrData = ctx.WrData
	sc.access = ctx.Access
	sc.variant = ctx.Variant
	sc.functional = ctx.Functional
	if !ctx.Functional && len(e.units) > 1 {
		if rep, ok := ctx.Access.(hbm.BankAccessReplicator); ok {
			return e.triggerLockstep(sc, rep, ctx.Cycle)
		}
	}
	var info hbm.TriggerInfo
	for i, u := range e.units {
		sc.evenBank = i * e.banksPerUnit
		sc.oddBank = i*e.banksPerUnit + e.banksPerUnit - 1
		c, err := u.step(sc)
		info.Instructions += c.instrs
		info.Arithmetic += c.arith
		info.DataMoves += c.moves
		if err != nil {
			return info, fmt.Errorf("pim: unit %d: %w", i, err)
		}
	}
	if e.TL != nil {
		e.TL.PIMInstr(ctx.Cycle, info.Instructions)
	}
	return info, nil
}

// triggerLockstep steps only unit 0 and accounts units [1, n) as exact
// mirrors: retirement counts multiply, bank traffic replicates through
// the BankAccessReplicator, and mirror control state is repaired lazily
// by syncUnits. Valid because timing-only execution touches no
// per-unit data (register contents are never read) and every unit would
// execute the identical slot against banks in the identical state. On
// error every unit would have failed the same way; the partial counts
// returned with an error are discarded by the device layer either way.
func (e *Executor) triggerLockstep(sc *stepContext, rep hbm.BankAccessReplicator, cycle int64) (hbm.TriggerInfo, error) {
	n := len(e.units)
	e.cnt.inner = sc.access
	e.cnt.reads, e.cnt.writes = 0, 0
	sc.access = &e.cnt
	sc.evenBank = 0
	sc.oddBank = e.banksPerUnit - 1
	e.desync = true
	c, err := e.units[0].step(sc)
	info := hbm.TriggerInfo{
		Instructions: c.instrs * n,
		Arithmetic:   c.arith * n,
		DataMoves:    c.moves * n,
	}
	if err != nil {
		return info, fmt.Errorf("pim: unit 0: %w", err)
	}
	if e.cnt.reads != 0 || e.cnt.writes != 0 {
		rep.ReplicateBankAccess(e.cnt.reads, e.cnt.writes, int64(n-1))
	}
	if e.TL != nil {
		e.TL.PIMInstr(cycle, info.Instructions)
	}
	return info, nil
}

// syncUnits copies unit 0's control state onto the mirror units after
// lockstep fast-path triggers. The decode caches need no copy: every
// unit holds identical CRF words and decodes lazily.
func (e *Executor) syncUnits() {
	if !e.desync {
		return
	}
	e.desync = false
	u0 := e.units[0]
	for _, u := range e.units[1:] {
		u.ppc = u0.ppc
		u.nopLeft = u0.nopLeft
		u.done = u0.done
		u.jumpLeft = u0.jumpLeft
		u.jumpArmed = u0.jumpArmed
		u.opRetired = u0.opRetired
		u.aamRetired = u0.aamRetired
	}
}

// ResetPPC implements hbm.PIMExecutor.
func (e *Executor) ResetPPC() {
	e.desync = false // every unit is reset to the same state anyway
	for _, u := range e.units {
		u.resetPPC()
	}
}

// Program decodes the current CRF contents of one unit up to its EXIT —
// introspection for debuggers and the pimsim tool.
func (e *Executor) Program(unit int) ([]isa.Instruction, error) {
	if unit < 0 || unit >= len(e.units) {
		return nil, fmt.Errorf("pim: unit %d out of range", unit)
	}
	return isa.DecodeProgram(e.units[unit].crf[:])
}

// AllDone reports whether every unit has retired EXIT.
func (e *Executor) AllDone() bool {
	e.syncUnits()
	for _, u := range e.units {
		if !u.Done() {
			return false
		}
	}
	return true
}

// Triggers returns how many AB-PIM column commands reached this executor.
func (e *Executor) Triggers() int64 { return e.triggers }

// OpCountsArray returns instructions retired per opcode, summed over
// units, indexed by isa.Opcode. It allocates nothing and is the accessor
// repeated callers (metrics scrapes, single-opcode queries) should use.
func (e *Executor) OpCountsArray() [isa.NumOpcodes]int64 {
	e.syncUnits()
	var out [isa.NumOpcodes]int64
	for _, u := range e.units {
		for op, n := range u.opRetired {
			out[op] += n
		}
	}
	return out
}

// OpCounts returns instructions retired per opcode, summed over units, as
// a map — the reporting-boundary form. Hot paths should prefer
// OpCountsArray, which does not allocate.
func (e *Executor) OpCounts() map[isa.Opcode]int64 {
	arr := e.OpCountsArray()
	out := make(map[isa.Opcode]int64)
	for op, n := range arr {
		if n > 0 {
			out[isa.Opcode(op)] = n
		}
	}
	return out
}

// AAMInstructions returns retired address-aligned-mode instructions,
// summed over units.
func (e *Executor) AAMInstructions() int64 {
	e.syncUnits()
	var t int64
	for _, u := range e.units {
		t += u.aamRetired
	}
	return t
}

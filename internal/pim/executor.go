package pim

import (
	"fmt"

	"pimsim/internal/hbm"
	"pimsim/internal/isa"
	"pimsim/internal/obs"
)

// Executor holds the PIM execution units of one pseudo channel and drives
// them in lock step. It implements hbm.PIMExecutor.
type Executor struct {
	units        []*Unit
	banksPerUnit int
	triggers     int64

	// TL, when set, records per-trigger retired-instruction counts into
	// the observability timeline (the Perfetto PIM-activity counter
	// track). Nil costs one pointer compare per trigger.
	TL *obs.ChannelTimeline
}

// NewExecutor builds the execution layer for a PIM device configuration.
func NewExecutor(cfg hbm.Config) (*Executor, error) {
	if cfg.PIMUnits <= 0 {
		return nil, fmt.Errorf("pim: configuration has no PIM units")
	}
	if cfg.Banks()%cfg.PIMUnits != 0 {
		return nil, fmt.Errorf("pim: %d units do not divide %d banks", cfg.PIMUnits, cfg.Banks())
	}
	grfEntries := isa.GRFEntries
	if cfg.Variant == hbm.Variant2X {
		grfEntries = 2 * isa.GRFEntries
	}
	e := &Executor{
		units:        make([]*Unit, cfg.PIMUnits),
		banksPerUnit: cfg.Banks() / cfg.PIMUnits,
	}
	for i := range e.units {
		e.units[i] = newUnit(grfEntries)
	}
	return e, nil
}

// Attach builds an executor and connects it to every pseudo channel of the
// device, returning one executor per channel.
func Attach(dev *hbm.Device) ([]*Executor, error) {
	execs := make([]*Executor, dev.NumPCH())
	for i := range execs {
		e, err := NewExecutor(dev.Config())
		if err != nil {
			return nil, err
		}
		dev.PCH(i).AttachPIM(e)
		execs[i] = e
	}
	return execs, nil
}

// Unit returns execution unit i (for result readout and tests).
func (e *Executor) Unit(i int) *Unit { return e.units[i] }

// NumUnits returns the number of units.
func (e *Executor) NumUnits() int { return len(e.units) }

// RegisterWrite implements hbm.PIMExecutor.
func (e *Executor) RegisterWrite(unit int, space hbm.RegSpace, col uint32, data []byte) error {
	if unit < 0 || unit >= len(e.units) {
		return fmt.Errorf("pim: unit %d out of range", unit)
	}
	return e.units[unit].writeRegSpace(space, col, data)
}

// RegisterRead implements hbm.PIMExecutor.
func (e *Executor) RegisterRead(unit int, space hbm.RegSpace, col uint32, buf []byte) error {
	if unit < 0 || unit >= len(e.units) {
		return fmt.Errorf("pim: unit %d out of range", unit)
	}
	return e.units[unit].readRegSpace(space, col, buf)
}

// Trigger implements hbm.PIMExecutor: one column command advances every
// unit by one command slot.
func (e *Executor) Trigger(ctx hbm.TriggerContext) (hbm.TriggerInfo, error) {
	e.triggers++
	var info hbm.TriggerInfo
	sc := stepContext{
		kind:       ctx.Kind,
		bankSel:    ctx.BankSel,
		row:        ctx.Row,
		col:        ctx.Col,
		wrData:     ctx.WrData,
		access:     ctx.Access,
		variant:    ctx.Variant,
		functional: ctx.Functional,
	}
	for i, u := range e.units {
		sc.evenBank = i * e.banksPerUnit
		sc.oddBank = i*e.banksPerUnit + e.banksPerUnit - 1
		c, err := u.step(&sc)
		info.Instructions += c.instrs
		info.Arithmetic += c.arith
		info.DataMoves += c.moves
		if err != nil {
			return info, fmt.Errorf("pim: unit %d: %w", i, err)
		}
	}
	if e.TL != nil {
		e.TL.PIMInstr(ctx.Cycle, info.Instructions)
	}
	return info, nil
}

// ResetPPC implements hbm.PIMExecutor.
func (e *Executor) ResetPPC() {
	for _, u := range e.units {
		u.resetPPC()
	}
}

// Program decodes the current CRF contents of one unit up to its EXIT —
// introspection for debuggers and the pimsim tool.
func (e *Executor) Program(unit int) ([]isa.Instruction, error) {
	if unit < 0 || unit >= len(e.units) {
		return nil, fmt.Errorf("pim: unit %d out of range", unit)
	}
	return isa.DecodeProgram(e.units[unit].crf[:])
}

// AllDone reports whether every unit has retired EXIT.
func (e *Executor) AllDone() bool {
	for _, u := range e.units {
		if !u.Done() {
			return false
		}
	}
	return true
}

// Triggers returns how many AB-PIM column commands reached this executor.
func (e *Executor) Triggers() int64 { return e.triggers }

// OpCountsArray returns instructions retired per opcode, summed over
// units, indexed by isa.Opcode. It allocates nothing and is the accessor
// repeated callers (metrics scrapes, single-opcode queries) should use.
func (e *Executor) OpCountsArray() [isa.NumOpcodes]int64 {
	var out [isa.NumOpcodes]int64
	for _, u := range e.units {
		for op, n := range u.opRetired {
			out[op] += n
		}
	}
	return out
}

// OpCounts returns instructions retired per opcode, summed over units, as
// a map — the reporting-boundary form. Hot paths should prefer
// OpCountsArray, which does not allocate.
func (e *Executor) OpCounts() map[isa.Opcode]int64 {
	arr := e.OpCountsArray()
	out := make(map[isa.Opcode]int64)
	for op, n := range arr {
		if n > 0 {
			out[isa.Opcode(op)] = n
		}
	}
	return out
}

// AAMInstructions returns retired address-aligned-mode instructions,
// summed over units.
func (e *Executor) AAMInstructions() int64 {
	var t int64
	for _, u := range e.units {
		t += u.aamRetired
	}
	return t
}

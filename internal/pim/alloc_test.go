package pim

import (
	"testing"

	"pimsim/internal/hbm"
)

// TestTriggerZeroAlloc pins the AB-PIM trigger path: once the kernel is
// programmed and the first trigger has lazily allocated the touched bank
// rows, every further triggering column command — decode, operand fetch,
// 16-lane MAC, retire accounting — must run without allocating. This is
// the inner loop of every functional kernel the simulator executes.
func TestTriggerZeroAlloc(t *testing.T) {
	cfg := hbm.PIMHBMConfig(1000)
	d, _ := newDriver(t, cfg)

	prog := mustAssemble(t, `
		MAC(AAM) GRF_B, GRF_A, EVEN_BANK
		JUMP -1, 127
		EXIT
	`)
	d.enterAB()
	d.programCRF(prog)
	d.setPIMOp(true)
	d.issue(hbm.Command{Kind: hbm.CmdACT, Row: 7})

	trig := hbm.Command{Kind: hbm.CmdRD, Bank: 0, Col: 0}
	d.issue(trig) // first trigger allocates each unit's bank row storage

	// 64 measured runs plus AllocsPerRun's warm-up stay within the 128
	// MAC triggers the JUMP loop accepts before EXIT.
	if avg := testing.AllocsPerRun(64, func() { d.issue(trig) }); avg != 0 {
		t.Errorf("AB-PIM MAC trigger allocates %v objects per command, want 0", avg)
	}
}

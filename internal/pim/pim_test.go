package pim

import (
	"math/rand"
	"strings"
	"testing"

	"pimsim/internal/fp16"
	"pimsim/internal/hbm"
	"pimsim/internal/isa"
)

// driver issues commands to one pseudo channel at their earliest legal
// cycles — a miniature of what the runtime's executor does in production.
type driver struct {
	t   *testing.T
	p   *hbm.PseudoChannel
	cfg hbm.Config
	now int64
}

func newDriver(t *testing.T, cfg hbm.Config) (*driver, *Executor) {
	t.Helper()
	dev, err := hbm.NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	execs, err := Attach(dev)
	if err != nil {
		t.Fatal(err)
	}
	return &driver{t: t, p: dev.PCH(0), cfg: cfg}, execs[0]
}

func (d *driver) issue(cmd hbm.Command) hbm.IssueResult {
	d.t.Helper()
	at, err := d.p.EarliestIssue(cmd, d.now)
	if err != nil {
		d.t.Fatalf("EarliestIssue(%s): %v", cmd, err)
	}
	res, err := d.p.Issue(cmd, at)
	if err != nil {
		d.t.Fatalf("Issue(%s): %v", cmd, err)
	}
	d.now = at
	return res
}

func (d *driver) issueErr(cmd hbm.Command) error {
	d.t.Helper()
	at, err := d.p.EarliestIssue(cmd, d.now)
	if err != nil {
		return err
	}
	_, err = d.p.Issue(cmd, at)
	return err
}

func (d *driver) enterAB() {
	d.issue(hbm.Command{Kind: hbm.CmdACT, BG: 0, Bank: hbm.ABMRBank, Row: d.cfg.ModeRow()})
	d.issue(hbm.Command{Kind: hbm.CmdPRE, BG: 0, Bank: hbm.ABMRBank})
}

func (d *driver) exitAB() {
	d.issue(hbm.Command{Kind: hbm.CmdACT, BG: 0, Bank: hbm.SBMRBank, Row: d.cfg.ModeRow()})
	d.issue(hbm.Command{Kind: hbm.CmdPRE, BG: 0, Bank: hbm.SBMRBank})
}

func (d *driver) setPIMOp(on bool) {
	data := make([]byte, 32)
	if on {
		data[0] = 1
	}
	d.issue(hbm.Command{Kind: hbm.CmdACT, BG: 0, Bank: hbm.ABMRBank, Row: d.cfg.ModeRow()})
	d.issue(hbm.Command{Kind: hbm.CmdWR, BG: 0, Bank: hbm.ABMRBank, Col: hbm.ColPIMOpMode, Data: data})
	d.issue(hbm.Command{Kind: hbm.CmdPRE, BG: 0, Bank: hbm.ABMRBank})
}

// programCRF broadcasts a microkernel into every unit's CRF (AB mode).
func (d *driver) programCRF(prog []isa.Instruction) {
	words, err := isa.EncodeProgram(prog)
	if err != nil {
		d.t.Fatal(err)
	}
	d.issue(hbm.Command{Kind: hbm.CmdACT, Row: d.cfg.CRFRow()})
	for col := 0; col*8 < len(words); col++ {
		buf := make([]byte, 32)
		for i := 0; i < 8 && col*8+i < len(words); i++ {
			w := words[col*8+i]
			buf[4*i] = byte(w)
			buf[4*i+1] = byte(w >> 8)
			buf[4*i+2] = byte(w >> 16)
			buf[4*i+3] = byte(w >> 24)
		}
		d.issue(hbm.Command{Kind: hbm.CmdWR, Col: uint32(col), Data: buf})
	}
	d.issue(hbm.Command{Kind: hbm.CmdPREA})
}

// writeBankSB writes a 32-byte block to one bank in SB mode.
func (d *driver) writeBankSB(flatBank int, row, col uint32, data []byte) {
	bg, b := flatBank/d.cfg.BanksPerGroup, flatBank%d.cfg.BanksPerGroup
	d.issue(hbm.Command{Kind: hbm.CmdACT, BG: bg, Bank: b, Row: row})
	d.issue(hbm.Command{Kind: hbm.CmdWR, BG: bg, Bank: b, Col: col, Data: data})
	d.issue(hbm.Command{Kind: hbm.CmdPRE, BG: bg, Bank: b})
}

// readBankSB reads a 32-byte block from one bank in SB mode.
func (d *driver) readBankSB(flatBank int, row, col uint32) []byte {
	bg, b := flatBank/d.cfg.BanksPerGroup, flatBank%d.cfg.BanksPerGroup
	d.issue(hbm.Command{Kind: hbm.CmdACT, BG: bg, Bank: b, Row: row})
	res := d.issue(hbm.Command{Kind: hbm.CmdRD, BG: bg, Bank: b, Col: col})
	data := append([]byte(nil), res.Data...) // res.Data is pCH scratch
	d.issue(hbm.Command{Kind: hbm.CmdPRE, BG: bg, Bank: b})
	return data
}

func splat(v fp16.F16) []byte {
	vec := fp16.NewVector(fp16.Lanes)
	for i := range vec {
		vec[i] = v
	}
	return vec.Bytes()
}

func mustAssemble(t *testing.T, src string) []isa.Instruction {
	t.Helper()
	prog, err := isa.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// TestGEMVMicrokernel runs the paper's flagship kernel end to end on one
// pseudo channel: weights live in the even banks, the input vector is
// pushed over the write datapath, MACs accumulate in GRF_B, and the host
// reads the partial sums back through the register space.
func TestGEMVMicrokernel(t *testing.T) {
	cfg := hbm.PIMHBMConfig(1000)
	d, exec := newDriver(t, cfg)
	rng := rand.New(rand.NewSource(42))

	const (
		inputs  = 8 // one GRF_A pass
		lanes   = fp16.Lanes
		units   = 8
		outputs = units * lanes // one output per lane per unit
		row     = 100
	)

	// x: the input vector; W: outputs x inputs weights.
	x := make(fp16.Vector, inputs)
	for i := range x {
		x[i] = fp16.FromFloat32(float32(rng.NormFloat64()))
	}
	W := make([]fp16.Vector, outputs)
	for o := range W {
		W[o] = make(fp16.Vector, inputs)
		for k := range W[o] {
			W[o][k] = fp16.FromFloat32(float32(rng.NormFloat64()))
		}
	}

	// Lay W out in the even banks: unit u's even bank (flat 2u), row,
	// column k holds lanes = W[u*16+lane][k].
	for u := 0; u < units; u++ {
		for k := 0; k < inputs; k++ {
			col := make(fp16.Vector, lanes)
			for lane := 0; lane < lanes; lane++ {
				col[lane] = W[u*lanes+lane][k]
			}
			d.writeBankSB(2*u, row, uint32(k), col.Bytes())
		}
	}

	prog := mustAssemble(t, `
		MOV(AAM) GRF_A, EVEN_BANK          ; WR triggers: load x splats
		JUMP -1, 7
		MAC(AAM) GRF_B, GRF_A, EVEN_BANK   ; RD triggers: accumulate
		JUMP -1, 7
		EXIT
	`)

	d.enterAB()
	d.programCRF(prog)
	d.setPIMOp(true)

	d.issue(hbm.Command{Kind: hbm.CmdACT, Row: row})
	for k := 0; k < inputs; k++ {
		d.issue(hbm.Command{Kind: hbm.CmdWR, Bank: 0, Col: uint32(k), Data: splat(x[k])})
	}
	for k := 0; k < inputs; k++ {
		d.issue(hbm.Command{Kind: hbm.CmdRD, Bank: 0, Col: uint32(k)})
	}
	if !exec.AllDone() {
		t.Fatal("microkernel did not reach EXIT")
	}
	d.issue(hbm.Command{Kind: hbm.CmdPREA})
	d.setPIMOp(false)
	d.exitAB()

	// Read GRF_B back per unit through the SB register space and reduce.
	got := make(fp16.Vector, outputs)
	for u := 0; u < units; u++ {
		acc := fp16.NewVector(lanes)
		bg, b := (2*u)/cfg.BanksPerGroup, (2*u)%cfg.BanksPerGroup
		d.issue(hbm.Command{Kind: hbm.CmdACT, BG: bg, Bank: b, Row: cfg.GRFRow()})
		for r := 0; r < inputs; r++ {
			res := d.issue(hbm.Command{Kind: hbm.CmdRD, BG: bg, Bank: b, Col: uint32(8 + r)})
			part := fp16.VectorFromBytes(res.Data)
			fp16.AddVec(acc, acc, part)
		}
		d.issue(hbm.Command{Kind: hbm.CmdPRE, BG: bg, Bank: b})
		copy(got[u*lanes:], acc)
	}

	// Reference: identical rounding order (per-k product, sequential sum).
	for o := 0; o < outputs; o++ {
		want := fp16.Zero
		for k := 0; k < inputs; k++ {
			want = fp16.Add(want, fp16.MAC(fp16.Zero, x[k], W[o][k]))
		}
		if got[o] != want {
			t.Fatalf("y[%d] = %v (0x%04x), want %v (0x%04x)",
				o, got[o], got[o].Bits(), want, want.Bits())
		}
	}
}

// TestADDMicrokernel runs elementwise c = a + b with a in the even banks,
// b in the odd banks, and c written back to the odd banks at columns 8-15.
func TestADDMicrokernel(t *testing.T) {
	cfg := hbm.PIMHBMConfig(1000)
	d, exec := newDriver(t, cfg)
	rng := rand.New(rand.NewSource(7))

	const row, n = 200, 8 // 8 columns of 16 lanes per bank pair
	a := make([]fp16.Vector, n)
	b := make([]fp16.Vector, n)
	for c := 0; c < n; c++ {
		a[c] = make(fp16.Vector, fp16.Lanes)
		b[c] = make(fp16.Vector, fp16.Lanes)
		for l := range a[c] {
			a[c][l] = fp16.FromFloat32(float32(rng.NormFloat64()))
			b[c][l] = fp16.FromFloat32(float32(rng.NormFloat64()))
		}
	}
	// Same data in every unit's bank pair (broadcast writes would do this
	// too; SB writes to unit 3's pair keep the test focused).
	const unit = 3
	for c := 0; c < n; c++ {
		d.writeBankSB(2*unit, row, uint32(c), a[c].Bytes())
		d.writeBankSB(2*unit+1, row, uint32(c), b[c].Bytes())
	}

	prog := mustAssemble(t, `
		MOV(AAM) GRF_A, EVEN_BANK        ; RD even: load a
		JUMP -1, 7
		ADD(AAM) GRF_A, GRF_A, ODD_BANK  ; RD odd: a + b
		JUMP -1, 7
		MOV(AAM) ODD_BANK, GRF_A         ; WR odd: store c
		JUMP -1, 7
		EXIT
	`)

	d.enterAB()
	d.programCRF(prog)
	d.setPIMOp(true)
	d.issue(hbm.Command{Kind: hbm.CmdACT, Row: row})
	for c := 0; c < n; c++ {
		d.issue(hbm.Command{Kind: hbm.CmdRD, Bank: 0, Col: uint32(c)})
	}
	for c := 0; c < n; c++ {
		d.issue(hbm.Command{Kind: hbm.CmdRD, Bank: 1, Col: uint32(c)})
	}
	for c := 0; c < n; c++ {
		d.issue(hbm.Command{Kind: hbm.CmdWR, Bank: 1, Col: uint32(8 + c)})
	}
	if !exec.AllDone() {
		t.Fatal("microkernel did not reach EXIT")
	}
	d.issue(hbm.Command{Kind: hbm.CmdPREA})
	d.setPIMOp(false)
	d.exitAB()

	for c := 0; c < n; c++ {
		got := fp16.VectorFromBytes(d.readBankSB(2*unit+1, row, uint32(8+c)))
		for l := 0; l < fp16.Lanes; l++ {
			want := fp16.Add(a[c][l], b[c][l])
			if got[l] != want {
				t.Fatalf("c[%d][%d] = %v, want %v", c, l, got[l], want)
			}
		}
	}
}

// TestReLUMove checks the in-flight ReLU of MOV on negative inputs.
func TestReLUMove(t *testing.T) {
	cfg := hbm.PIMHBMConfig(1000)
	d, _ := newDriver(t, cfg)
	const row = 10
	in := fp16.FromFloat32s([]float32{-1, 2, -3, 4, -5, 6, -0, 8, -9, 10, -11, 12, -13, 14, -15, 16})
	for u := 0; u < 8; u++ {
		d.writeBankSB(2*u, row, 0, in.Bytes())
	}
	prog := mustAssemble(t, `
		MOV(RELU) GRF_A[0], EVEN_BANK
		MOV ODD_BANK, GRF_A[0]
		EXIT
	`)
	d.enterAB()
	d.programCRF(prog)
	d.setPIMOp(true)
	d.issue(hbm.Command{Kind: hbm.CmdACT, Row: row})
	d.issue(hbm.Command{Kind: hbm.CmdRD, Bank: 0, Col: 0})
	d.issue(hbm.Command{Kind: hbm.CmdWR, Bank: 1, Col: 1})
	d.issue(hbm.Command{Kind: hbm.CmdPREA})
	d.setPIMOp(false)
	d.exitAB()

	got := fp16.VectorFromBytes(d.readBankSB(1, row, 1))
	for l := range in {
		if want := fp16.ReLU(in[l]); got[l] != want {
			t.Errorf("lane %d: %v, want %v", l, got[l], want)
		}
	}
}

// TestMADWithSRF exercises the scalar path: y = x * SRF_M[i] + SRF_A[i].
func TestMADWithSRF(t *testing.T) {
	cfg := hbm.PIMHBMConfig(1000)
	d, exec := newDriver(t, cfg)
	const row = 20
	scale := fp16.FromFloat32(0.5)
	shift := fp16.FromFloat32(3)
	x := fp16.FromFloat32s([]float32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	for u := 0; u < 8; u++ {
		d.writeBankSB(2*u, row, 0, x.Bytes())
	}

	d.enterAB()
	// Program the SRF: SRF_M[0..7] then SRF_A[0..7] in one 32B column.
	srf := fp16.NewVector(16)
	srf[0] = scale
	srf[8] = shift
	d.issue(hbm.Command{Kind: hbm.CmdACT, Row: cfg.SRFRow()})
	d.issue(hbm.Command{Kind: hbm.CmdWR, Col: 0, Data: srf.Bytes()})
	d.issue(hbm.Command{Kind: hbm.CmdPREA})

	prog := mustAssemble(t, `
		MAD GRF_A[0], EVEN_BANK, SRF_M[0]
		MOV ODD_BANK, GRF_A[0]
		EXIT
	`)
	d.programCRF(prog)
	d.setPIMOp(true)
	d.issue(hbm.Command{Kind: hbm.CmdACT, Row: row})
	d.issue(hbm.Command{Kind: hbm.CmdRD, Bank: 0, Col: 0})
	d.issue(hbm.Command{Kind: hbm.CmdWR, Bank: 1, Col: 0})
	if !exec.AllDone() {
		t.Fatal("not done")
	}
	d.issue(hbm.Command{Kind: hbm.CmdPREA})
	d.setPIMOp(false)
	d.exitAB()

	got := fp16.VectorFromBytes(d.readBankSB(1, row, 0))
	for l := range x {
		want := fp16.MAD(x[l], scale, shift)
		if got[l] != want {
			t.Errorf("lane %d: %v, want %v", l, got[l], want)
		}
	}
}

// TestBankSelMismatch: an instruction reading EVEN_BANK driven by an
// odd-set command is a kernel bug the model must catch.
func TestBankSelMismatch(t *testing.T) {
	cfg := hbm.PIMHBMConfig(1000)
	d, _ := newDriver(t, cfg)
	prog := mustAssemble(t, `
		MOV(AAM) GRF_A, EVEN_BANK
		EXIT
	`)
	d.enterAB()
	d.programCRF(prog)
	d.setPIMOp(true)
	d.issue(hbm.Command{Kind: hbm.CmdACT, Row: 5})
	if err := d.issueErr(hbm.Command{Kind: hbm.CmdRD, Bank: 1, Col: 0}); err == nil {
		t.Error("even-bank instruction accepted an odd-set trigger")
	}
}

// TestTriggerAfterExit: surplus column commands after EXIT are rejected.
func TestTriggerAfterExit(t *testing.T) {
	cfg := hbm.PIMHBMConfig(1000)
	d, _ := newDriver(t, cfg)
	d.enterAB()
	d.programCRF(mustAssemble(t, "EXIT"))
	d.setPIMOp(true)
	d.issue(hbm.Command{Kind: hbm.CmdACT, Row: 5})
	d.issue(hbm.Command{Kind: hbm.CmdRD, Bank: 0, Col: 0})
	if err := d.issueErr(hbm.Command{Kind: hbm.CmdRD, Bank: 0, Col: 1}); err == nil {
		t.Error("trigger after EXIT accepted")
	}
}

// TestMultiCycleNOP: NOP n idles n+1 command slots.
func TestMultiCycleNOP(t *testing.T) {
	cfg := hbm.PIMHBMConfig(1000)
	d, exec := newDriver(t, cfg)
	d.enterAB()
	d.programCRF(mustAssemble(t, "NOP 2\nEXIT"))
	d.setPIMOp(true)
	d.issue(hbm.Command{Kind: hbm.CmdACT, Row: 5})
	// Slot 1: NOP retires and arms 2 idle slots; slots 2-3: idle; slot 4: EXIT.
	for i := 0; i < 4; i++ {
		d.issue(hbm.Command{Kind: hbm.CmdRD, Bank: 0, Col: uint32(i)})
	}
	if !exec.AllDone() {
		t.Error("NOP padding did not land on EXIT")
	}
}

// TestPPCResetOnReentry: toggling PIM_OP_MODE reruns the kernel from CRF 0
// with rearmed JUMP counters.
func TestPPCResetOnReentry(t *testing.T) {
	cfg := hbm.PIMHBMConfig(1000)
	d, exec := newDriver(t, cfg)
	run := func() {
		d.setPIMOp(true)
		d.issue(hbm.Command{Kind: hbm.CmdACT, Row: 7})
		for k := 0; k < 4; k++ {
			d.issue(hbm.Command{Kind: hbm.CmdRD, Bank: 0, Col: uint32(k)})
		}
		if !exec.AllDone() {
			t.Fatal("kernel incomplete")
		}
		d.issue(hbm.Command{Kind: hbm.CmdPREA})
		d.setPIMOp(false)
	}
	d.enterAB()
	d.programCRF(mustAssemble(t, `
		MOV(AAM) GRF_A, EVEN_BANK
		JUMP -1, 3
		EXIT
	`))
	run()
	run() // must work identically the second time
}

// TestSRWForwarding: under the SRW variant one WR command loads the GRF
// operand and executes the MAC against the bank in the same slot.
func TestSRWForwarding(t *testing.T) {
	cfg := hbm.PIMHBMConfig(1000)
	cfg.Variant = hbm.VariantSRW
	d, exec := newDriver(t, cfg)
	rng := rand.New(rand.NewSource(3))

	const row = 30
	w := make(fp16.Vector, fp16.Lanes)
	for l := range w {
		w[l] = fp16.FromFloat32(float32(rng.NormFloat64()))
	}
	x := fp16.FromFloat32(1.5)
	for u := 0; u < 8; u++ {
		d.writeBankSB(2*u, row, 0, w.Bytes())
	}

	d.enterAB()
	d.programCRF(mustAssemble(t, `
		MAC(AAM) GRF_B, GRF_A, EVEN_BANK
		EXIT
	`))
	d.setPIMOp(true)
	d.issue(hbm.Command{Kind: hbm.CmdACT, Row: row})
	// One WR carries the splatted x AND triggers the MAC.
	d.issue(hbm.Command{Kind: hbm.CmdWR, Bank: 0, Col: 0, Data: splat(x)})
	if !exec.AllDone() {
		t.Fatal("not done")
	}

	got := exec.Unit(0).GRF(1, 0)
	for l := range w {
		want := fp16.MAC(fp16.Zero, x, w[l])
		if got[l] != want {
			t.Errorf("lane %d: %v, want %v", l, got[l], want)
		}
	}
}

// Test2XVariantDepth: the 2x DSE variant has 16 units with 16-deep GRFs.
func Test2XVariantDepth(t *testing.T) {
	cfg := hbm.PIMHBMConfig(1000)
	cfg.Variant = hbm.Variant2X
	cfg.PIMUnits = 16
	exec, err := NewExecutor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if exec.NumUnits() != 16 {
		t.Fatalf("units = %d", exec.NumUnits())
	}
	if got := len(exec.Unit(0).grfA); got != 16 {
		t.Fatalf("GRF depth = %d, want 16", got)
	}
	if cfg.AAMWindow() != 16 {
		t.Fatalf("AAM window = %d, want 16", cfg.AAMWindow())
	}
}

func TestRegisterSpaceBounds(t *testing.T) {
	u := newUnit(isa.GRFEntries)
	if err := u.writeRegSpace(hbm.RegCRF, 4, make([]byte, 32)); err == nil {
		t.Error("CRF col 4 accepted (only 32 words)")
	}
	if err := u.writeRegSpace(hbm.RegGRF, 16, make([]byte, 32)); err == nil {
		t.Error("GRF col 16 accepted")
	}
	if err := u.writeRegSpace(hbm.RegSRF, 1, make([]byte, 32)); err == nil {
		t.Error("SRF col 1 accepted")
	}
	if err := u.writeRegSpace(hbm.RegCRF, 0, make([]byte, 8)); err == nil {
		t.Error("short payload accepted")
	}
	if err := u.readRegSpace(hbm.RegCRF, 4, make([]byte, 32)); err == nil {
		t.Error("CRF read col 4 accepted")
	}
	if err := u.readRegSpace(hbm.RegMode, 0, make([]byte, 32)); err == nil {
		t.Error("mode-space read routed to unit")
	}
}

func TestCRFRoundTripThroughRegisterSpace(t *testing.T) {
	u := newUnit(isa.GRFEntries)
	prog := mustAssemble(t, `
		MAC GRF_B[0], GRF_A[0], EVEN_BANK
		JUMP -1, 7
		EXIT
	`)
	words, err := isa.EncodeProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 32)
	for i, w := range words {
		buf[4*i] = byte(w)
		buf[4*i+1] = byte(w >> 8)
		buf[4*i+2] = byte(w >> 16)
		buf[4*i+3] = byte(w >> 24)
	}
	if err := u.writeRegSpace(hbm.RegCRF, 0, buf); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, 32)
	if err := u.readRegSpace(hbm.RegCRF, 0, out); err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		if out[i] != buf[i] {
			t.Fatalf("byte %d: %02x != %02x", i, out[i], buf[i])
		}
	}
	back, err := isa.DecodeProgram([]uint32{u.crf[0], u.crf[1], u.crf[2]})
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(isa.FormatProgram(back)); !strings.Contains(got, "MAC") {
		t.Errorf("decoded program:\n%s", got)
	}
}

func TestExecutorValidation(t *testing.T) {
	if _, err := NewExecutor(hbm.HBM2Config(1000)); err == nil {
		t.Error("executor built for a device with no PIM units")
	}
	cfg := hbm.PIMHBMConfig(1000)
	if _, err := NewExecutor(cfg); err != nil {
		t.Error(err)
	}
}

// TestFILLLoadsRegisters exercises FILL into both a GRF register and the
// scalar register files, then uses the loaded scalars through MAD.
func TestFILLLoadsRegisters(t *testing.T) {
	cfg := hbm.PIMHBMConfig(1000)
	d, exec := newDriver(t, cfg)
	const row = 33

	// Bank data: one block whose first 8 halves feed SRF_M, next 8 SRF_A;
	// and a vector block for GRF.
	srfBlock := fp16.NewVector(16)
	for i := range srfBlock {
		srfBlock[i] = fp16.FromFloat32(float32(i) * 0.5)
	}
	vec := fp16.FromFloat32s([]float32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	for u := 0; u < 8; u++ {
		d.writeBankSB(2*u, row, 0, srfBlock.Bytes())
		d.writeBankSB(2*u, row, 1, vec.Bytes())
	}

	prog := mustAssemble(t, `
		FILL SRF_M[0], EVEN_BANK        ; col 0 lanes 0-7 -> SRF_M
		FILL SRF_A[0], EVEN_BANK        ; col 0 lanes 8-15 -> SRF_A
		FILL GRF_A[3], EVEN_BANK        ; col 1: loads the vector
		MAD GRF_B[0], GRF_A[3], SRF_M[2]
		MOV ODD_BANK, GRF_B[0]
		EXIT
	`)
	d.enterAB()
	d.programCRF(prog)
	d.setPIMOp(true)
	d.issue(hbm.Command{Kind: hbm.CmdACT, Row: row})
	d.issue(hbm.Command{Kind: hbm.CmdRD, Bank: 0, Col: 0})
	d.issue(hbm.Command{Kind: hbm.CmdRD, Bank: 0, Col: 0})
	d.issue(hbm.Command{Kind: hbm.CmdRD, Bank: 0, Col: 1})
	d.issue(hbm.Command{Kind: hbm.CmdRD, Bank: 0, Col: 2})
	d.issue(hbm.Command{Kind: hbm.CmdWR, Bank: 1, Col: 5})
	if !exec.AllDone() {
		t.Fatal("not done")
	}

	// FILL split the 32B into SRF_M[0..7] then SRF_A[0..7].
	u0 := exec.Unit(0)
	for i := 0; i < 8; i++ {
		if u0.SRF(0, i) != srfBlock[i] {
			t.Errorf("SRF_M[%d] = %v, want %v", i, u0.SRF(0, i), srfBlock[i])
		}
		if u0.SRF(1, i) != srfBlock[8+i] {
			t.Errorf("SRF_A[%d] = %v, want %v", i, u0.SRF(1, i), srfBlock[8+i])
		}
	}
	// MAD with SRF_M[2] and SRF_A[2]: y = vec*1.0 + 5.0.
	d.issue(hbm.Command{Kind: hbm.CmdPREA})
	d.setPIMOp(false)
	d.exitAB()
	got := fp16.VectorFromBytes(d.readBankSB(1, row, 5))
	for l := range vec {
		want := fp16.MAD(vec[l], srfBlock[2], srfBlock[8+2])
		if got[l] != want {
			t.Errorf("lane %d: %v, want %v", l, got[l], want)
		}
	}
}

func TestExecutorProgramIntrospection(t *testing.T) {
	cfg := hbm.PIMHBMConfig(1000)
	d, exec := newDriver(t, cfg)
	src := mustAssemble(t, `
		MAC(AAM) GRF_B, GRF_A, EVEN_BANK
		JUMP -1, 7
		EXIT
	`)
	d.enterAB()
	d.programCRF(src)
	prog, err := exec.Program(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog) != 3 || prog[0].Op != isa.MAC || prog[2].Op != isa.EXIT {
		t.Fatalf("decoded %v", prog)
	}
	if _, err := exec.Program(99); err == nil {
		t.Error("out-of-range unit accepted")
	}
}

// TestRegisterOnlyArithmetic: instructions without a bank operand (the
// paper's "skip the second pipeline stage" case, e.g. MAD GRF_B[0],
// GRF_A[0], GRF_B[1]) execute under either trigger kind.
func TestRegisterOnlyArithmetic(t *testing.T) {
	cfg := hbm.PIMHBMConfig(1000)
	d, exec := newDriver(t, cfg)
	const row = 12

	a := fp16.FromFloat32s([]float32{1, 2, 3, 4, 5, 6, 7, 8, -1, -2, -3, -4, -5, -6, -7, -8})
	b := fp16.FromFloat32s([]float32{2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5})
	for u := 0; u < 8; u++ {
		d.writeBankSB(2*u, row, 0, a.Bytes())
		d.writeBankSB(2*u, row, 1, b.Bytes())
	}
	// Load both vectors, multiply register-to-register under a WR trigger
	// (no bank access at all), store.
	prog := mustAssemble(t, `
		FILL GRF_A[0], EVEN_BANK
		FILL GRF_B[1], EVEN_BANK
		MUL GRF_B[2], GRF_A[0], GRF_B[1]
		MOV ODD_BANK, GRF_B[2]
		EXIT
	`)
	d.enterAB()
	d.programCRF(prog)
	d.setPIMOp(true)
	d.issue(hbm.Command{Kind: hbm.CmdACT, Row: row})
	d.issue(hbm.Command{Kind: hbm.CmdRD, Bank: 0, Col: 0})
	d.issue(hbm.Command{Kind: hbm.CmdRD, Bank: 0, Col: 1})
	d.issue(hbm.Command{Kind: hbm.CmdWR, Bank: 1, Col: 2}) // register-only MUL on a WR slot
	d.issue(hbm.Command{Kind: hbm.CmdWR, Bank: 1, Col: 3})
	if !exec.AllDone() {
		t.Fatal("not done")
	}
	d.issue(hbm.Command{Kind: hbm.CmdPREA})
	d.setPIMOp(false)
	d.exitAB()
	got := fp16.VectorFromBytes(d.readBankSB(1, row, 3))
	for l := range a {
		want := fp16.Mul(a[l], b[l])
		if got[l] != want {
			t.Errorf("lane %d: %v, want %v", l, got[l], want)
		}
	}
}

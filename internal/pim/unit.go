// Package pim implements the PIM execution unit of Section IV: a 16-lane
// FP16 SIMD datapath with CRF, GRF and SRF register files, driven in lock
// step by standard DRAM column commands. The Executor type implements
// hbm.PIMExecutor and attaches to a pseudo channel.
package pim

import (
	"encoding/binary"
	"fmt"

	"pimsim/internal/fp16"
	"pimsim/internal/hbm"
	"pimsim/internal/isa"
)

// PipelineStages is the depth of the execution pipeline (fetch/decode,
// bank read, multiply, add, writeback). Execution latency is deterministic
// and hidden under the tCCD_L command cadence, which is what lets a JEDEC
// controller drive the unit blind (Section IV-B).
const PipelineStages = 5

// Unit is one PIM execution unit: the state shared by the 16 SIMD lanes.
type Unit struct {
	crf [isa.CRFEntries]uint32

	grfA, grfB []fp16.Vector // vector registers, one 16-lane vector each
	srfM, srfA []fp16.F16    // scalar registers

	ppc       int                   // PIM program counter
	nopLeft   int                   // remaining idle command slots of a multi-cycle NOP
	jumpLeft  [isa.CRFEntries]int32 // per-CRF-slot remaining JUMP iterations
	jumpArmed [isa.CRFEntries]bool  // whether jumpLeft holds a live count for the slot
	done      bool

	// Decode cache: the unit re-fetches the same 32-slot microkernel once
	// per trigger, so decoding from the raw CRF word on every fetch
	// dominates the timing-only profile. Entries are invalidated when the
	// covering CRF slots are written.
	decoded [isa.CRFEntries]isa.Instruction
	decErr  [isa.CRFEntries]error
	decOK   [isa.CRFEntries]bool

	grfEntries int // 8, or 16 for the 2x DSE variant

	opRetired  [isa.NumOpcodes]int64 // instructions retired, indexed by isa.Opcode
	aamRetired int64                 // of which address-aligned (AAM) instructions

	// Operand-staging scratch, reused across instructions so the hot path
	// performs no allocation. The ISA guarantees at most one bank operand
	// and one scalar broadcast per instruction, so one buffer of each kind
	// suffices; contents are dead once the instruction retires.
	bankBuf []byte      // bank read burst (2*Lanes bytes)
	bankVec fp16.Vector // decoded bank operand
	srfVec  fp16.Vector // broadcast scalar operand
	tmpVec  fp16.Vector // ReLU staging and register-space marshalling
	outBuf  []byte      // bank write burst (2*Lanes bytes)
}

// newUnit builds a unit with the given GRF depth per half.
func newUnit(grfEntries int) *Unit {
	u := &Unit{grfEntries: grfEntries}
	u.grfA = make([]fp16.Vector, grfEntries)
	u.grfB = make([]fp16.Vector, grfEntries)
	for i := 0; i < grfEntries; i++ {
		u.grfA[i] = fp16.NewVector(fp16.Lanes)
		u.grfB[i] = fp16.NewVector(fp16.Lanes)
	}
	u.srfM = make([]fp16.F16, isa.SRFEntries)
	u.srfA = make([]fp16.F16, isa.SRFEntries)
	u.bankBuf = make([]byte, 2*fp16.Lanes)
	u.bankVec = fp16.NewVector(fp16.Lanes)
	u.srfVec = fp16.NewVector(fp16.Lanes)
	u.tmpVec = fp16.NewVector(fp16.Lanes)
	u.outBuf = make([]byte, 2*fp16.Lanes)
	u.resetPPC()
	return u
}

func (u *Unit) resetPPC() {
	u.ppc = 0
	u.nopLeft = 0
	u.jumpLeft = [isa.CRFEntries]int32{}
	u.jumpArmed = [isa.CRFEntries]bool{}
	u.done = false
}

// fetchSlot returns the cached decode of CRF slot i, decoding on first use
// after the slot was written. The returned pointer aliases the cache entry
// (valid until the covering CRF slot is rewritten), so the per-trigger
// fetch loop copies no Instruction structs.
func (u *Unit) fetchSlot(i int) (*isa.Instruction, error) {
	if !u.decOK[i] {
		u.decodeSlot(i)
	}
	return &u.decoded[i], u.decErr[i]
}

// decodeSlot fills the decode cache for slot i — kept out of fetchSlot
// (and out of fetchSlot's inline budget) so the cache-hit path inlines
// into the fetch loop.
//
//go:noinline
func (u *Unit) decodeSlot(i int) {
	u.decoded[i], u.decErr[i] = isa.Decode(u.crf[i])
	u.decOK[i] = true
}

// GRF returns a copy of a vector register (half 0 = GRF_A, 1 = GRF_B).
func (u *Unit) GRF(half, idx int) fp16.Vector {
	regs := u.grfA
	if half == 1 {
		regs = u.grfB
	}
	out := fp16.NewVector(fp16.Lanes)
	copy(out, regs[idx])
	return out
}

// SRF returns a scalar register (port 0 = SRF_M, 1 = SRF_A).
func (u *Unit) SRF(port, idx int) fp16.F16 {
	if port == 0 {
		return u.srfM[idx]
	}
	return u.srfA[idx]
}

// Done reports whether the microkernel has executed EXIT.
func (u *Unit) Done() bool { return u.done }

// PPC returns the current program counter (for debugging and tests).
func (u *Unit) PPC() int { return u.ppc }

// grf returns the register slice for an ISA source.
func (u *Unit) grf(s isa.Src) []fp16.Vector {
	if s == isa.GRFA {
		return u.grfA
	}
	return u.grfB
}

// stepCounts reports what one command slot retired.
type stepCounts struct {
	instrs int // all retired instructions including zero-cycle control
	arith  int // FPU-active instructions
	moves  int // MOV/FILL instructions
}

// step executes PIM instructions until exactly one command slot has been
// consumed (zero-cycle JUMPs retire for free).
func (u *Unit) step(ctx *stepContext) (stepCounts, error) {
	var c stepCounts
	if u.done {
		return c, fmt.Errorf("pim: column command after EXIT (host sent too many triggers)")
	}
	if u.nopLeft > 0 {
		u.nopLeft--
		return c, nil // an idle slot of a multi-cycle NOP
	}
	for hops := 0; ; hops++ {
		if hops > isa.CRFEntries*2 {
			return c, fmt.Errorf("pim: control-flow livelock at PPC %d", u.ppc)
		}
		if u.ppc < 0 || u.ppc >= isa.CRFEntries {
			return c, fmt.Errorf("pim: PPC %d out of CRF range", u.ppc)
		}
		in, derr := u.fetchSlot(u.ppc)
		if derr != nil {
			return c, fmt.Errorf("pim: CRF[%d]: %w", u.ppc, derr)
		}
		switch in.Op {
		case isa.JUMP:
			// Zero-cycle: pre-decoded at fetch, consumes no command slot.
			c.instrs++
			u.opRetired[isa.JUMP]++
			left := int32(in.Imm0)
			if u.jumpArmed[u.ppc] {
				left = u.jumpLeft[u.ppc]
			}
			if left > 0 {
				u.jumpArmed[u.ppc] = true
				u.jumpLeft[u.ppc] = left - 1
				u.ppc -= int(in.Imm1)
			} else {
				u.jumpArmed[u.ppc] = false // rearm for a future pass
				u.ppc++
			}
			continue
		case isa.EXIT:
			c.instrs++
			u.opRetired[isa.EXIT]++
			u.done = true
			return c, nil
		case isa.NOP:
			c.instrs++
			u.opRetired[isa.NOP]++
			u.nopLeft = int(in.Imm0)
			u.ppc++
			return c, nil
		}
		// Data or arithmetic: consumes the command slot.
		c.instrs++
		u.opRetired[in.Op]++
		if in.AAM {
			u.aamRetired++
		}
		if in.Op.IsArith() {
			c.arith++
		} else {
			c.moves++
		}
		if err := u.execute(in, ctx); err != nil {
			return c, fmt.Errorf("pim: CRF[%d] %s: %w", u.ppc, *in, err)
		}
		u.ppc++
		// Flow control after the consuming instruction is zero-cycle
		// (pre-decoded at fetch, Section III-C): resolve JUMP chains and a
		// trailing EXIT without waiting for another command.
		n, err := u.resolveControl()
		c.instrs += n
		return c, err
	}
}

// resolveControl retires zero-cycle JUMPs and a trailing EXIT at the
// current PPC, stopping as soon as the PPC rests on a consuming
// instruction.
func (u *Unit) resolveControl() (int, error) {
	instrs := 0
	for hops := 0; ; hops++ {
		if hops > isa.CRFEntries*2 {
			return instrs, fmt.Errorf("pim: control-flow livelock at PPC %d", u.ppc)
		}
		if u.ppc < 0 || u.ppc >= isa.CRFEntries {
			return instrs, fmt.Errorf("pim: PPC %d out of CRF range", u.ppc)
		}
		in, err := u.fetchSlot(u.ppc)
		if err != nil {
			return instrs, fmt.Errorf("pim: CRF[%d]: %w", u.ppc, err)
		}
		switch in.Op {
		case isa.JUMP:
			instrs++
			u.opRetired[isa.JUMP]++
			left := int32(in.Imm0)
			if u.jumpArmed[u.ppc] {
				left = u.jumpLeft[u.ppc]
			}
			if left > 0 {
				u.jumpArmed[u.ppc] = true
				u.jumpLeft[u.ppc] = left - 1
				u.ppc -= int(in.Imm1)
			} else {
				u.jumpArmed[u.ppc] = false
				u.ppc++
			}
		case isa.EXIT:
			instrs++
			u.opRetired[isa.EXIT]++
			u.done = true
			return instrs, nil
		default:
			return instrs, nil
		}
	}
}

// stepContext carries per-trigger information into instruction execution.
type stepContext struct {
	kind       hbm.CmdKind
	bankSel    int
	row, col   uint32
	wrData     []byte
	access     hbm.BankAccess
	variant    hbm.Variant
	functional bool

	evenBank, oddBank int // flat bank indices for this unit
}

// aamIndex derives a register index from the triggering address in
// address-aligned mode: the low column bits walk the register file
// linearly (Section IV-C).
func (c *stepContext) aamIndex(entries int) uint8 {
	return uint8(int(c.col) % entries)
}

// execute performs one data or arithmetic instruction.
func (u *Unit) execute(in *isa.Instruction, ctx *stepContext) error {
	dstIdx, s0Idx, s1Idx := int(in.DstIdx), int(in.Src0Idx), int(in.Src1Idx)
	if in.AAM {
		// All three index fields are replaced by the same address
		// sub-field; distinct register files keep the operands distinct.
		gi := int(ctx.aamIndex(u.grfEntries))
		si := int(ctx.aamIndex(isa.SRFEntries))
		idxFor := func(s isa.Src) int {
			if s.IsSRF() {
				return si
			}
			return gi
		}
		dstIdx, s0Idx, s1Idx = idxFor(in.Dst), idxFor(in.Src0), idxFor(in.Src1)
	}
	if dstIdx >= u.grfEntries && in.Dst.IsGRF() {
		return fmt.Errorf("pim: DST index %d exceeds GRF depth %d", dstIdx, u.grfEntries)
	}

	// SRW variant: a WR trigger forwards the host payload into the GRF
	// write port while the bank read proceeds, so a single command both
	// loads the vector operand and executes the arithmetic (Fig. 14).
	if in.Op.IsArith() && ctx.variant == hbm.VariantSRW && ctx.kind == hbm.CmdWR &&
		in.Src0.IsGRF() && ctx.functional && len(ctx.wrData) >= 2*fp16.Lanes {
		u.grf(in.Src0)[s0Idx].DecodeBytes(ctx.wrData[:2*fp16.Lanes])
	}

	// Only data-movement instructions may capture the write datapath as
	// their bank operand; an arithmetic bank operand needs a real array
	// read, which a WR trigger supplies only in the SRW variant.
	allowCapture := in.Op.IsData()

	switch in.Op {
	case isa.MOV:
		if in.Dst.IsBank() {
			// GRF -> bank store; needs the write drivers, i.e. a WR trigger.
			if ctx.kind != hbm.CmdWR {
				return fmt.Errorf("pim: MOV to bank triggered by %s, needs WR", ctx.kind)
			}
			src := u.grf(in.Src0)[s0Idx]
			if in.ReLU && ctx.functional {
				// Staging only matters when data is modeled; timing-only
				// stores pass no payload either way.
				src = fp16.ReLUVec(u.tmpVec, src)
			}
			return u.writeBank(in.Dst, ctx, src)
		}
		src, err := u.fetch(in.Src0, s0Idx, ctx, allowCapture)
		if err != nil {
			return err
		}
		dst := u.grf(in.Dst)[dstIdx]
		if !ctx.functional {
			return nil
		}
		if in.ReLU {
			fp16.ReLUVec(dst, src)
		} else {
			copy(dst, src)
		}
		return nil

	case isa.FILL:
		src, err := u.readBank(in.Src0, ctx, true)
		if err != nil {
			return err
		}
		if !ctx.functional {
			return nil
		}
		switch {
		case in.Dst.IsGRF():
			copy(u.grf(in.Dst)[dstIdx], src)
		case in.Dst == isa.SRFM:
			// The SRF halves mirror the memory-mapped layout: SRF_M takes
			// lanes 0-7 of the block, SRF_A lanes 8-15.
			copy(u.srfM, src[:isa.SRFEntries])
		default: // SRF_A
			copy(u.srfA, src[isa.SRFEntries:2*isa.SRFEntries])
		}
		return nil
	}

	// Arithmetic.
	a, err := u.fetch(in.Src0, s0Idx, ctx, allowCapture)
	if err != nil {
		return err
	}
	b, err := u.fetch(in.Src1, s1Idx, ctx, allowCapture)
	if err != nil {
		return err
	}
	if !ctx.functional {
		return nil
	}
	dst := u.grf(in.Dst)[dstIdx]
	switch in.Op {
	case isa.ADD:
		fp16.AddVec(dst, a, b)
	case isa.MUL:
		fp16.MulVec(dst, a, b)
	case isa.MAC:
		fp16.MACVec(dst, a, b)
	case isa.MAD:
		// dst = a*b + SRF_A[s1Idx] (the addend shares SRC1's index in a
		// different register file, Section III-C). The scalar feeds every
		// lane directly; no broadcast staging needed.
		addend := u.srfA[s1Idx%isa.SRFEntries]
		for i := range dst {
			dst[i] = fp16.MAD(a[i], b[i], addend)
		}
	}
	return nil
}

// fetch resolves one instruction operand. Like readBank's result, a bank
// or scalar-broadcast operand aliases the unit's staging buffers and is
// only valid until the next fetch.
func (u *Unit) fetch(s isa.Src, idx int, ctx *stepContext, allowCapture bool) (fp16.Vector, error) {
	switch {
	case s.IsGRF():
		if idx >= u.grfEntries {
			return nil, fmt.Errorf("pim: %s index %d exceeds GRF depth %d", s, idx, u.grfEntries)
		}
		return u.grf(s)[idx], nil
	case s.IsBank():
		return u.readBank(s, ctx, allowCapture)
	case s == isa.SRFM:
		return u.broadcast(u.srfM[idx%isa.SRFEntries]), nil
	default: // SRF_A
		return u.broadcast(u.srfA[idx%isa.SRFEntries]), nil
	}
}

// readBank fetches 32 bytes from the unit's even or odd bank at the
// triggering column. Under a WR trigger, a data-movement instruction
// (allowCapture) captures the host payload from the write datapath instead
// — "the host processor pushes 256 bits to the write drivers or PIM
// registers" (Section III-A) — which is how input vectors are loaded into
// the GRF between compute bursts.
// The returned vector is the unit's reusable staging buffer: it is valid
// until the next operand fetch and must be consumed (copied or combined
// into a register) before then, which every instruction does.
func (u *Unit) readBank(s isa.Src, ctx *stepContext, allowCapture bool) (fp16.Vector, error) {
	if allowCapture && ctx.kind == hbm.CmdWR {
		if !ctx.functional {
			return u.bankVec, nil // contents are never read in timing-only mode
		}
		if len(ctx.wrData) < 2*fp16.Lanes {
			clear(u.bankVec)
			return u.bankVec, nil
		}
		return u.bankVec.DecodeBytes(ctx.wrData[:2*fp16.Lanes]), nil
	}
	idx, err := u.bankIndex(s, ctx, hbm.CmdRD)
	if err != nil {
		return nil, err
	}
	if err := ctx.access.ReadBank(idx, ctx.col, u.bankBuf); err != nil {
		return nil, err
	}
	if !ctx.functional {
		return u.bankVec, nil // contents are never read in timing-only mode
	}
	return u.bankVec.DecodeBytes(u.bankBuf), nil
}

// writeBank stores a vector to the unit's even or odd bank.
func (u *Unit) writeBank(s isa.Src, ctx *stepContext, v fp16.Vector) error {
	idx, err := u.bankIndex(s, ctx, hbm.CmdWR)
	if err != nil {
		return err
	}
	if !ctx.functional {
		return ctx.access.WriteBank(idx, ctx.col, nil)
	}
	v.PutBytes(u.outBuf)
	return ctx.access.WriteBank(idx, ctx.col, u.outBuf)
}

// bankIndex resolves EVEN_BANK/ODD_BANK to a flat bank index, checking
// that the triggering command actually drives that bank set.
func (u *Unit) bankIndex(s isa.Src, ctx *stepContext, need hbm.CmdKind) (int, error) {
	if ctx.evenBank == ctx.oddBank {
		// 2x variant: one unit per bank; both names alias the single bank.
		return ctx.evenBank, nil
	}
	want := 0
	idx := ctx.evenBank
	if s == isa.OddBank {
		want = 1
		idx = ctx.oddBank
	}
	if ctx.variant != hbm.Variant2BA && ctx.bankSel != want {
		return 0, fmt.Errorf("pim: instruction reads %s but the command drives the %s banks",
			s, []string{"even", "odd"}[ctx.bankSel])
	}
	if need == hbm.CmdRD && ctx.kind == hbm.CmdWR && ctx.variant != hbm.VariantSRW {
		// A WR trigger cannot supply a bank read operand except in the SRW
		// variant, where the overlapping RD datapath is available.
		return 0, fmt.Errorf("pim: bank read operand on a WR trigger")
	}
	if need == hbm.CmdWR && ctx.kind == hbm.CmdRD {
		return 0, fmt.Errorf("pim: bank write on a RD trigger")
	}
	return idx, nil
}

// broadcast splats a scalar across the unit's reusable broadcast buffer;
// like readBank's result, the slice is only valid until the next fetch.
func (u *Unit) broadcast(s fp16.F16) fp16.Vector {
	v := u.srfVec
	for i := range v {
		v[i] = s
	}
	return v
}

// Register-space access (memory-mapped CRF/GRF/SRF, Section III-B).

// writeRegSpace stores a 32-byte block into the unit's register space.
func (u *Unit) writeRegSpace(space hbm.RegSpace, col uint32, data []byte) error {
	if len(data) < 32 {
		return fmt.Errorf("pim: register write payload %dB, want 32B", len(data))
	}
	switch space {
	case hbm.RegCRF:
		base := int(col) * 8
		if base+8 > isa.CRFEntries {
			return fmt.Errorf("pim: CRF column %d out of range", col)
		}
		for i := 0; i < 8; i++ {
			u.crf[base+i] = binary.LittleEndian.Uint32(data[4*i:])
			u.decOK[base+i] = false // invalidate the decode cache
		}
	case hbm.RegGRF:
		half, idx := int(col)/u.grfEntries, int(col)%u.grfEntries
		if half > 1 {
			return fmt.Errorf("pim: GRF column %d out of range", col)
		}
		regs := u.grfA
		if half == 1 {
			regs = u.grfB
		}
		regs[idx].DecodeBytes(data[:32])
	case hbm.RegSRF:
		if col != 0 {
			return fmt.Errorf("pim: SRF column %d out of range", col)
		}
		v := u.tmpVec.DecodeBytes(data[:32])
		copy(u.srfM, v[:isa.SRFEntries])
		copy(u.srfA, v[isa.SRFEntries:])
	default:
		return fmt.Errorf("pim: write to register space %d", space)
	}
	return nil
}

// readRegSpace loads a 32-byte block from the unit's register space.
func (u *Unit) readRegSpace(space hbm.RegSpace, col uint32, buf []byte) error {
	if len(buf) < 32 {
		return fmt.Errorf("pim: register read buffer %dB, want 32B", len(buf))
	}
	switch space {
	case hbm.RegCRF:
		base := int(col) * 8
		if base+8 > isa.CRFEntries {
			return fmt.Errorf("pim: CRF column %d out of range", col)
		}
		for i := 0; i < 8; i++ {
			binary.LittleEndian.PutUint32(buf[4*i:], u.crf[base+i])
		}
	case hbm.RegGRF:
		half, idx := int(col)/u.grfEntries, int(col)%u.grfEntries
		if half > 1 {
			return fmt.Errorf("pim: GRF column %d out of range", col)
		}
		regs := u.grfA
		if half == 1 {
			regs = u.grfB
		}
		regs[idx].PutBytes(buf)
	case hbm.RegSRF:
		if col != 0 {
			return fmt.Errorf("pim: SRF column %d out of range", col)
		}
		v := u.tmpVec[:2*isa.SRFEntries]
		copy(v[:isa.SRFEntries], u.srfM)
		copy(v[isa.SRFEntries:], u.srfA)
		v.PutBytes(buf)
	default:
		return fmt.Errorf("pim: read from register space %d", space)
	}
	return nil
}

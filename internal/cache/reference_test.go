package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// refCache is a deliberately naive reference model: per set, an ordered
// list of resident tags with explicit LRU moves. The production cache's
// observable behavior (hit/miss per access, eviction and writeback
// counts) must match it on arbitrary access sequences.
type refCache struct {
	lineSize, assoc, sets   int
	resident                [][]refLine // index 0 = most recently used
	hits, misses, evict, wb int64
}

type refLine struct {
	tag   uint64
	dirty bool
}

func newRef(capacity, lineSize, assoc int) *refCache {
	sets := capacity / (lineSize * assoc)
	r := &refCache{lineSize: lineSize, assoc: assoc, sets: sets}
	r.resident = make([][]refLine, sets)
	return r
}

func (r *refCache) access(addr uint64, write bool) bool {
	blk := addr / uint64(r.lineSize)
	si := int(blk % uint64(r.sets))
	tag := blk / uint64(r.sets)
	set := r.resident[si]
	for i, l := range set {
		if l.tag == tag {
			r.hits++
			l.dirty = l.dirty || write
			// Move to front.
			set = append(set[:i], set[i+1:]...)
			r.resident[si] = append([]refLine{l}, set...)
			return true
		}
	}
	r.misses++
	if len(set) == r.assoc {
		victim := set[len(set)-1]
		r.evict++
		if victim.dirty {
			r.wb++
		}
		set = set[:len(set)-1]
	}
	r.resident[si] = append([]refLine{{tag: tag, dirty: write}}, set...)
	return false
}

func TestCacheMatchesReferenceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 20; trial++ {
		capacity, line, assoc := 1<<12, 64, 4
		c := MustNew(capacity, line, assoc)
		r := newRef(capacity, line, assoc)
		// A mix of hot and cold addresses to exercise reuse and eviction.
		hot := make([]uint64, 32)
		for i := range hot {
			hot[i] = uint64(rng.Intn(1<<14)) &^ 63
		}
		for step := 0; step < 5000; step++ {
			var addr uint64
			if rng.Float64() < 0.6 {
				addr = hot[rng.Intn(len(hot))]
			} else {
				addr = uint64(rng.Intn(1<<20)) &^ 63
			}
			write := rng.Float64() < 0.3
			got := c.Access(addr, write)
			want := r.access(addr, write)
			if got != want {
				t.Fatalf("trial %d step %d addr %#x: hit=%v, reference says %v", trial, step, addr, got, want)
			}
		}
		if c.Hits() != r.hits || c.Misses() != r.misses {
			t.Fatalf("counters diverged: %d/%d vs %d/%d", c.Hits(), c.Misses(), r.hits, r.misses)
		}
		if c.Evictions() != r.evict || c.Writebacks() != r.wb {
			t.Fatalf("evictions/writebacks diverged: %d/%d vs %d/%d",
				c.Evictions(), c.Writebacks(), r.evict, r.wb)
		}
	}
}

func TestCacheQuickAgainstReference(t *testing.T) {
	f := func(addrs []uint32, writes []bool) bool {
		c := MustNew(1<<10, 64, 2)
		r := newRef(1<<10, 64, 2)
		for i, a := range addrs {
			w := i < len(writes) && writes[i]
			if c.Access(uint64(a), w) != r.access(uint64(a), w) {
				return false
			}
		}
		return c.Evictions() == r.evict && c.Writebacks() == r.wb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

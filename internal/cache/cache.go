// Package cache implements a set-associative, write-back, write-allocate
// LRU cache simulator. The host model uses it as the last-level cache to
// reproduce the LLC miss rates of Fig. 10: batch-1 GEMV streams a weight
// matrix far larger than the LLC (~100% misses), while batching introduces
// reuse that pulls the miss rate down to 70-80%.
package cache

import "fmt"

// Cache is one level of a set-associative cache.
type Cache struct {
	lineSize int
	assoc    int
	numSets  int

	sets []set

	hits      int64
	misses    int64
	evictions int64
	wbacks    int64 // dirty evictions
	clock     uint64
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	used  uint64 // LRU timestamp
}

type set struct {
	lines []line
}

// New builds a cache of the given total capacity in bytes. Capacity must
// be divisible by lineSize*assoc.
func New(capacity, lineSize, assoc int) (*Cache, error) {
	switch {
	case capacity <= 0 || lineSize <= 0 || assoc <= 0:
		return nil, fmt.Errorf("cache: non-positive geometry")
	case lineSize&(lineSize-1) != 0:
		return nil, fmt.Errorf("cache: line size %d not a power of two", lineSize)
	case capacity%(lineSize*assoc) != 0:
		return nil, fmt.Errorf("cache: capacity %d not divisible by %d-byte ways", capacity, lineSize*assoc)
	}
	numSets := capacity / (lineSize * assoc)
	c := &Cache{lineSize: lineSize, assoc: assoc, numSets: numSets, sets: make([]set, numSets)}
	for i := range c.sets {
		c.sets[i].lines = make([]line, assoc)
	}
	return c, nil
}

// MustNew panics on configuration errors.
func MustNew(capacity, lineSize, assoc int) *Cache {
	c, err := New(capacity, lineSize, assoc)
	if err != nil {
		panic(err)
	}
	return c
}

// Capacity returns the cache size in bytes.
func (c *Cache) Capacity() int { return c.lineSize * c.assoc * c.numSets }

// LineSize returns the line size in bytes.
func (c *Cache) LineSize() int { return c.lineSize }

// Access performs one read (write=false) or write (write=true) to addr and
// reports whether it hit. Misses allocate (write-allocate) and evict LRU.
func (c *Cache) Access(addr uint64, write bool) bool {
	c.clock++
	blk := addr / uint64(c.lineSize)
	si := int(blk % uint64(c.numSets))
	tag := blk / uint64(c.numSets)
	s := &c.sets[si]

	for i := range s.lines {
		l := &s.lines[i]
		if l.valid && l.tag == tag {
			c.hits++
			l.used = c.clock
			if write {
				l.dirty = true
			}
			return true
		}
	}
	c.misses++

	// Allocate: prefer an invalid way, else evict the LRU.
	victim := 0
	for i := range s.lines {
		if !s.lines[i].valid {
			victim = i
			break
		}
		if s.lines[i].used < s.lines[victim].used {
			victim = i
		}
	}
	v := &s.lines[victim]
	if v.valid {
		c.evictions++
		if v.dirty {
			c.wbacks++
		}
	}
	*v = line{tag: tag, valid: true, dirty: write, used: c.clock}
	return false
}

// AccessRange touches every line overlapped by [addr, addr+size) and
// returns the number of misses.
func (c *Cache) AccessRange(addr uint64, size int, write bool) int {
	if size <= 0 {
		return 0
	}
	first := addr / uint64(c.lineSize)
	last := (addr + uint64(size) - 1) / uint64(c.lineSize)
	misses := 0
	for b := first; b <= last; b++ {
		if !c.Access(b*uint64(c.lineSize), write) {
			misses++
		}
	}
	return misses
}

// Hits returns the hit count.
func (c *Cache) Hits() int64 { return c.hits }

// Misses returns the miss count.
func (c *Cache) Misses() int64 { return c.misses }

// Evictions returns the eviction count.
func (c *Cache) Evictions() int64 { return c.evictions }

// Writebacks returns the dirty-eviction count.
func (c *Cache) Writebacks() int64 { return c.wbacks }

// MissRate returns misses/(hits+misses), or 0 with no accesses.
func (c *Cache) MissRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.misses) / float64(total)
}

// MissBytes returns the DRAM traffic generated so far: line fills plus
// dirty writebacks.
func (c *Cache) MissBytes() int64 {
	return (c.misses + c.wbacks) * int64(c.lineSize)
}

// ResetStats zeroes the counters but keeps cache contents.
func (c *Cache) ResetStats() {
	c.hits, c.misses, c.evictions, c.wbacks = 0, 0, 0, 0
}

// Flush invalidates everything, returning the number of dirty lines that
// would be written back (the cost of handing a region to PIM, Section
// VIII "Cache Bypassing").
func (c *Cache) Flush() int64 {
	var dirty int64
	for i := range c.sets {
		for j := range c.sets[i].lines {
			l := &c.sets[i].lines[j]
			if l.valid && l.dirty {
				dirty++
			}
			*l = line{}
		}
	}
	return dirty
}

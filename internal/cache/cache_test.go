package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGeometryValidation(t *testing.T) {
	cases := []struct{ cap, line, assoc int }{
		{0, 64, 8}, {1 << 20, 63, 8}, {1 << 20, 0, 8}, {100, 64, 8},
	}
	for _, c := range cases {
		if _, err := New(c.cap, c.line, c.assoc); err == nil {
			t.Errorf("New(%d,%d,%d) accepted", c.cap, c.line, c.assoc)
		}
	}
	if _, err := New(1<<20, 64, 16); err != nil {
		t.Error(err)
	}
}

func TestHitAfterMiss(t *testing.T) {
	c := MustNew(1<<16, 64, 8)
	if c.Access(0x1000, false) {
		t.Error("cold access hit")
	}
	if !c.Access(0x1000, false) {
		t.Error("second access missed")
	}
	if !c.Access(0x1038, false) {
		t.Error("same-line access missed")
	}
	if c.Access(0x1040, false) {
		t.Error("next line hit while cold")
	}
	if c.Hits() != 2 || c.Misses() != 2 {
		t.Errorf("hits=%d misses=%d", c.Hits(), c.Misses())
	}
}

func TestWorkingSetFitsPerfectly(t *testing.T) {
	c := MustNew(1<<16, 64, 8) // 64 KiB
	// Touch 32 KiB twice: second pass must be all hits.
	for pass := 0; pass < 2; pass++ {
		for a := uint64(0); a < 32<<10; a += 64 {
			c.Access(a, false)
		}
	}
	if got := c.MissRate(); got != 0.5 {
		t.Errorf("miss rate %v, want 0.5 (cold pass only)", got)
	}
}

func TestStreamingThrashes(t *testing.T) {
	c := MustNew(1<<16, 64, 8)
	// Stream 4 MiB twice: no reuse survives, miss rate ~100%.
	for pass := 0; pass < 2; pass++ {
		for a := uint64(0); a < 4<<20; a += 64 {
			c.Access(a, false)
		}
	}
	if got := c.MissRate(); got < 0.99 {
		t.Errorf("streaming miss rate %v, want ~1", got)
	}
}

func TestLRUEviction(t *testing.T) {
	// Direct construction: 2-way, 1 set (128 B).
	c := MustNew(128, 64, 2)
	c.Access(0, false)     // A
	c.Access(1<<10, false) // B (same set)
	c.Access(0, false)     // touch A: B is now LRU
	c.Access(2<<10, false) // C evicts B
	if !c.Access(0, false) {
		t.Error("A was evicted despite being MRU")
	}
	if c.Access(1<<10, false) {
		t.Error("B survived despite being LRU")
	}
	if c.Evictions() < 1 {
		t.Error("no evictions counted")
	}
}

func TestDirtyWriteback(t *testing.T) {
	c := MustNew(128, 64, 2)
	c.Access(0, true) // dirty A
	c.Access(1<<10, false)
	c.Access(2<<10, false) // evicts dirty A
	c.Access(3<<10, false)
	if c.Writebacks() != 1 {
		t.Errorf("writebacks = %d, want 1", c.Writebacks())
	}
	// MissBytes counts fills + writebacks.
	if got := c.MissBytes(); got != (4+1)*64 {
		t.Errorf("MissBytes = %d, want %d", got, 5*64)
	}
}

func TestAccessRangeSpansLines(t *testing.T) {
	c := MustNew(1<<16, 64, 8)
	// 100 bytes starting 10 before a boundary touches 3 lines.
	if got := c.AccessRange(64-10, 100+10+2, false); got != 3 {
		t.Errorf("misses = %d, want 3", got)
	}
	if got := c.AccessRange(0, 0, false); got != 0 {
		t.Errorf("empty range missed %d", got)
	}
}

func TestFlush(t *testing.T) {
	c := MustNew(1<<12, 64, 4)
	c.Access(0, true)
	c.Access(64, false)
	if got := c.Flush(); got != 1 {
		t.Errorf("flush reported %d dirty lines, want 1", got)
	}
	if c.Access(0, false) {
		t.Error("hit after flush")
	}
}

func TestResetStatsKeepsContents(t *testing.T) {
	c := MustNew(1<<12, 64, 4)
	c.Access(0, false)
	c.ResetStats()
	if c.Misses() != 0 {
		t.Error("stats not reset")
	}
	if !c.Access(0, false) {
		t.Error("contents were lost")
	}
}

func TestQuickConservation(t *testing.T) {
	// hits+misses equals accesses; evictions never exceed misses.
	f := func(addrs []uint32) bool {
		c := MustNew(1<<12, 64, 2)
		for _, a := range addrs {
			c.Access(uint64(a), a%3 == 0)
		}
		total := c.Hits() + c.Misses()
		return total == int64(len(addrs)) && c.Evictions() <= c.Misses() && c.Writebacks() <= c.Evictions()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCapacityMissCurve(t *testing.T) {
	// Re-walking a working set: miss rate should step up as the set
	// exceeds capacity.
	rates := make([]float64, 0, 3)
	for _, ws := range []uint64{16 << 10, 64 << 10, 1 << 20} {
		c := MustNew(64<<10, 64, 8)
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 50000; i++ {
			c.Access(uint64(rng.Int63())%ws&^63, false)
		}
		rates = append(rates, c.MissRate())
	}
	if !(rates[0] < rates[1] && rates[1] < rates[2]) {
		t.Errorf("miss rates not monotone in working set: %v", rates)
	}
	if rates[0] > 0.05 {
		t.Errorf("fitting working set missed %v", rates[0])
	}
}

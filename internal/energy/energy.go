// Package energy converts device activity counters into component-level
// energy and power, reproducing the structure of Fig. 11: cell and
// IOSA/decoder power scale with the number of concurrently accessed banks,
// while the internal global I/O bus and the I/O PHY go quiet in AB-PIM
// mode because data never leaves the bank periphery. The buffer die's
// 1024-bit data I/O circuit keeps toggling in PIM mode on the fabricated
// part (the ~10% saving the paper says it left on the table).
//
// Parameter calibration (params.go) targets the paper's three measured
// anchors: PIM-HBM draws ~5.4% more power than HBM over back-to-back RD
// streams, at 4x the delivered (on-chip) bandwidth, which yields ~3.5-3.8x
// lower energy per bit.
package energy

import (
	"fmt"

	"pimsim/internal/hbm"
)

// Breakdown is energy by component, in picojoules.
type Breakdown struct {
	Cell       float64 // DRAM cell array column activity
	IOSA       float64 // I/O sense amps + row/column decoders
	Activate   float64 // row activation/precharge energy
	GlobalBus  float64 // internal bank-to-periphery data bus
	BufferIO   float64 // buffer-die 1024-bit data I/O circuit
	IOPHY      float64 // external PHY drivers
	PIMFPU     float64 // PIM execution units
	Refresh    float64
	Background float64 // standby, clocking, peripheral static
}

// Total sums all components (pJ).
func (b Breakdown) Total() float64 {
	return b.Cell + b.IOSA + b.Activate + b.GlobalBus + b.BufferIO +
		b.IOPHY + b.PIMFPU + b.Refresh + b.Background
}

// Dynamic sums everything except background (pJ).
func (b Breakdown) Dynamic() float64 { return b.Total() - b.Background }

// Add returns the componentwise sum.
func (b Breakdown) Add(o Breakdown) Breakdown {
	return Breakdown{
		Cell:       b.Cell + o.Cell,
		IOSA:       b.IOSA + o.IOSA,
		Activate:   b.Activate + o.Activate,
		GlobalBus:  b.GlobalBus + o.GlobalBus,
		BufferIO:   b.BufferIO + o.BufferIO,
		IOPHY:      b.IOPHY + o.IOPHY,
		PIMFPU:     b.PIMFPU + o.PIMFPU,
		Refresh:    b.Refresh + o.Refresh,
		Background: b.Background + o.Background,
	}
}

// Scale returns the breakdown multiplied by k.
func (b Breakdown) Scale(k float64) Breakdown {
	return Breakdown{
		Cell: k * b.Cell, IOSA: k * b.IOSA, Activate: k * b.Activate,
		GlobalBus: k * b.GlobalBus, BufferIO: k * b.BufferIO, IOPHY: k * b.IOPHY,
		PIMFPU: k * b.PIMFPU, Refresh: k * b.Refresh, Background: k * b.Background,
	}
}

// Compute derives the energy breakdown for activity stats accumulated over
// `cycles` device clocks. banksPerACT is how many banks one broadcast ACT
// opens (Config.Banks()); pchs is how many pseudo channels the background
// power covers (use the number of channels the stats were summed over).
func Compute(st hbm.Stats, cycles int64, cfg hbm.Config, p Params, pchs int) Breakdown {
	var b Breakdown

	bankAccesses := float64(st.BankReads + st.BankWrites)
	b.Cell += bankAccesses * p.CellColPJ
	b.IOSA += bankAccesses * p.IOSAColPJ
	if cfg.ECC {
		// The on-die engine encodes on writes and decodes on reads.
		b.IOSA += bankAccesses * p.ECCCheckPJ
	}

	acts := float64(st.ACT) + float64(st.ABACT)*float64(cfg.Banks())
	b.Activate += acts * p.ActivatePJ
	pres := float64(st.PRE) + float64(st.ABPRE)*float64(cfg.Banks())
	b.Activate += pres * p.PrechargePJ

	// Every column command toggles the buffer-die data I/O circuit, even
	// PIM triggers that move no data off chip.
	colCmds := float64(st.RD + st.WR + st.ABRD + st.ABWR)
	b.BufferIO += colCmds * p.BufferIOPJ

	// Only data that actually crosses the device boundary pays the
	// internal global bus and the external PHY.
	offBlocks := float64(st.OffChipBytes) / float64(cfg.AccessBytes)
	b.GlobalBus += offBlocks * p.GlobalBusPJ
	b.IOPHY += offBlocks * p.IOPHYPJ

	b.PIMFPU += float64(st.PIMArith) * p.FPUOpPJ
	b.PIMFPU += float64(st.PIMMove) * p.PIMMovePJ

	b.Refresh += float64(st.REF) * p.RefreshPJ

	// mW * ns = 1e-3 J/s * 1e-9 s = 1e-12 J = pJ, so the product is
	// already in picojoules.
	ns := cfg.Timing.CyclesToNs(cycles)
	b.Background += ns * p.BackgroundMWPerPCH * float64(pchs)

	return b
}

// Power converts a breakdown accumulated over `cycles` into average watts.
func Power(b Breakdown, cycles int64, t hbm.Timing) float64 {
	sec := t.CyclesToSec(cycles)
	if sec <= 0 {
		return 0
	}
	return b.Total() * 1e-12 / sec
}

// PowerBreakdown converts each component into average watts.
type PowerBreakdown struct {
	Cell, IOSA, Activate, GlobalBus, BufferIO, IOPHY, PIMFPU, Refresh, Background float64
}

// ToPower divides every component by the elapsed time.
func ToPower(b Breakdown, cycles int64, t hbm.Timing) (PowerBreakdown, error) {
	sec := t.CyclesToSec(cycles)
	if sec <= 0 {
		return PowerBreakdown{}, fmt.Errorf("energy: non-positive interval")
	}
	w := func(pj float64) float64 { return pj * 1e-12 / sec }
	return PowerBreakdown{
		Cell: w(b.Cell), IOSA: w(b.IOSA), Activate: w(b.Activate),
		GlobalBus: w(b.GlobalBus), BufferIO: w(b.BufferIO), IOPHY: w(b.IOPHY),
		PIMFPU: w(b.PIMFPU), Refresh: w(b.Refresh), Background: w(b.Background),
	}, nil
}

// Total sums the power components (watts).
func (p PowerBreakdown) Total() float64 {
	return p.Cell + p.IOSA + p.Activate + p.GlobalBus + p.BufferIO +
		p.IOPHY + p.PIMFPU + p.Refresh + p.Background
}

// EnergyPerBit returns pJ/bit for the given breakdown and payload bytes.
func EnergyPerBit(b Breakdown, bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	return b.Total() / (8 * float64(bytes))
}

package energy

import (
	"math"
	"testing"

	"pimsim/internal/hbm"
	"pimsim/internal/isa"
	"pimsim/internal/pim"
)

func TestBreakdownArithmetic(t *testing.T) {
	a := Breakdown{Cell: 1, IOSA: 2, Background: 3}
	b := Breakdown{Cell: 10, PIMFPU: 5}
	sum := a.Add(b)
	if sum.Cell != 11 || sum.IOSA != 2 || sum.PIMFPU != 5 || sum.Background != 3 {
		t.Errorf("Add: %+v", sum)
	}
	if got := sum.Total(); got != 21 {
		t.Errorf("Total = %v", got)
	}
	if got := sum.Dynamic(); got != 18 {
		t.Errorf("Dynamic = %v", got)
	}
	if got := sum.Scale(2).Total(); got != 42 {
		t.Errorf("Scale = %v", got)
	}
}

func TestBackgroundUnits(t *testing.T) {
	cfg := hbm.HBM2Config(1000)
	p := Params{BackgroundMWPerPCH: 100}
	// 1000 cycles at 1 GHz = 1000 ns; 100 mW over 1000 ns = 100 nJ = 1e5 pJ.
	b := Compute(hbm.Stats{}, 1000, cfg, p, 1)
	if math.Abs(b.Background-1e5) > 1 {
		t.Errorf("background = %v pJ, want 1e5", b.Background)
	}
	// Power back-conversion: 1e5 pJ over 1 us = 0.1 W.
	if w := Power(b, 1000, cfg.Timing); math.Abs(w-0.1) > 1e-9 {
		t.Errorf("power = %v W, want 0.1", w)
	}
}

func TestEnergyPerBit(t *testing.T) {
	b := Breakdown{Cell: 800}
	if got := EnergyPerBit(b, 100); got != 1 {
		t.Errorf("pJ/bit = %v, want 1", got)
	}
	if got := EnergyPerBit(b, 0); got != 0 {
		t.Errorf("zero bytes: %v", got)
	}
}

// streamHBM issues n back-to-back RDs at the tCCD_S cadence across bank
// groups and returns (stats, elapsed cycles).
func streamHBM(t *testing.T, n int) (hbm.Stats, int64, hbm.Config) {
	t.Helper()
	cfg := hbm.HBM2Config(1200)
	cfg.Functional = false
	dev := hbm.MustNewDevice(cfg)
	p := dev.PCH(0)
	var now int64
	issue := func(cmd hbm.Command) {
		t.Helper()
		at, err := p.EarliestIssue(cmd, now)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Issue(cmd, at); err != nil {
			t.Fatal(err)
		}
		now = at
	}
	for bg := 0; bg < 4; bg++ {
		issue(hbm.Command{Kind: hbm.CmdACT, BG: bg, Bank: 0, Row: 0})
	}
	cols := cfg.ColumnsPerRow()
	for i := 0; i < n; i++ {
		issue(hbm.Command{Kind: hbm.CmdRD, BG: i % 4, Bank: 0, Col: uint32(i/4) % uint32(cols)})
	}
	return p.Stats(), now, cfg
}

// streamPIM issues n MAC triggers at the tCCD_L cadence in AB-PIM mode.
func streamPIM(t *testing.T, n int) (hbm.Stats, int64, hbm.Config) {
	t.Helper()
	cfg := hbm.PIMHBMConfig(1200)
	cfg.Functional = false
	dev := hbm.MustNewDevice(cfg)
	if _, err := pim.Attach(dev); err != nil {
		t.Fatal(err)
	}
	p := dev.PCH(0)
	var now int64
	issue := func(cmd hbm.Command) {
		t.Helper()
		at, err := p.EarliestIssue(cmd, now)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Issue(cmd, at); err != nil {
			t.Fatal(err)
		}
		now = at
	}
	// Enter AB and program a long MAC loop.
	issue(hbm.Command{Kind: hbm.CmdACT, BG: 0, Bank: hbm.ABMRBank, Row: cfg.ModeRow()})
	issue(hbm.Command{Kind: hbm.CmdPRE, BG: 0, Bank: hbm.ABMRBank})
	prog := []isa.Instruction{
		{Op: isa.MAC, Dst: isa.GRFB, Src0: isa.GRFA, Src1: isa.EvenBank, AAM: true},
		isa.Jump(isa.MaxLoopIter, 1),
		isa.Jump(isa.MaxLoopIter, 2),
		isa.Jump(isa.MaxLoopIter, 3),
		isa.Exit(),
	}
	words, err := isa.EncodeProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	issue(hbm.Command{Kind: hbm.CmdACT, Row: cfg.CRFRow()})
	buf := make([]byte, 32)
	for i, w := range words {
		buf[4*i], buf[4*i+1], buf[4*i+2], buf[4*i+3] = byte(w), byte(w>>8), byte(w>>16), byte(w>>24)
	}
	issue(hbm.Command{Kind: hbm.CmdWR, Col: 0, Data: buf})
	issue(hbm.Command{Kind: hbm.CmdPREA})
	on := make([]byte, 32)
	on[0] = 1
	issue(hbm.Command{Kind: hbm.CmdACT, BG: 0, Bank: hbm.ABMRBank, Row: cfg.ModeRow()})
	issue(hbm.Command{Kind: hbm.CmdWR, BG: 0, Bank: hbm.ABMRBank, Col: hbm.ColPIMOpMode, Data: on})
	issue(hbm.Command{Kind: hbm.CmdPRE, BG: 0, Bank: hbm.ABMRBank})
	issue(hbm.Command{Kind: hbm.CmdACT, Row: 1})
	dev.ResetStats() // measure the steady-state stream only
	start := now
	cols := cfg.ColumnsPerRow()
	for i := 0; i < n; i++ {
		issue(hbm.Command{Kind: hbm.CmdRD, Bank: 0, Col: uint32(i % cols)})
	}
	return p.Stats(), now - start, cfg
}

// TestFig11PowerAnchors drives real back-to-back RD streams through the
// device model and checks the paper's measured power relationships.
func TestFig11PowerAnchors(t *testing.T) {
	const n = 4096
	params := DefaultParams()

	hs, hcyc, hcfg := streamHBM(t, n)
	ps, pcyc, pcfg := streamPIM(t, n)

	hb := Compute(hs, hcyc, hcfg, params, 1)
	pb := Compute(ps, pcyc, pcfg, params, 1)
	hw := Power(hb, hcyc, hcfg.Timing)
	pw := Power(pb, pcyc, pcfg.Timing)

	// Anchor 1: PIM-HBM power ~5.4% above HBM (Fig. 11). Allow 2-9%.
	ratio := pw / hw
	if ratio < 1.02 || ratio > 1.09 {
		t.Errorf("PIM/HBM power ratio = %.3f, want ~1.054", ratio)
	}

	// Anchor 2: removing the buffer-die I/O toggle would put PIM below
	// HBM (the ~10% note).
	pNoBuf := Power(Breakdown{
		Cell: pb.Cell, IOSA: pb.IOSA, Activate: pb.Activate,
		GlobalBus: pb.GlobalBus, IOPHY: pb.IOPHY, PIMFPU: pb.PIMFPU,
		Refresh: pb.Refresh, Background: pb.Background,
	}, pcyc, pcfg.Timing)
	if pNoBuf >= hw {
		t.Errorf("PIM without buffer toggle = %.3f W, want below HBM %.3f W", pNoBuf, hw)
	}

	// Anchor 3: energy per delivered bit 3.5-4x lower for PIM. HBM
	// delivers 32 B per command off chip; PIM delivers 8 x 32 B to the
	// FPUs per command.
	hBits := 8 * float64(hs.OffChipBytes)
	pBits := 8 * float64(ps.BankReads) * 32
	hppb := hb.Total() / hBits
	pppb := pb.Total() / pBits
	if r := hppb / pppb; r < 3.2 || r > 4.2 {
		t.Errorf("energy/bit ratio = %.2f, want ~3.5-3.8", r)
	}

	// Structure: PIM moves nothing off chip during RD triggers; its bus
	// and PHY components must be ~zero while cell+IOSA is ~4x HBM's.
	if pb.GlobalBus > 0.02*pb.Total() || pb.IOPHY > 0.02*pb.Total() {
		t.Errorf("PIM bus/PHY energy should be negligible: %+v", pb)
	}
	cellRatio := (pb.Cell + pb.IOSA) / pcfg.Timing.CyclesToNs(pcyc) /
		((hb.Cell + hb.IOSA) / hcfg.Timing.CyclesToNs(hcyc))
	if cellRatio < 3.5 || cellRatio > 4.5 {
		t.Errorf("cell+IOSA power ratio = %.2f, want ~4 (proportional to banks)", cellRatio)
	}
}

func TestToPowerComponents(t *testing.T) {
	cfg := hbm.HBM2Config(1000)
	b := Breakdown{Cell: 1000, IOPHY: 500}
	pw, err := ToPower(b, 1000, cfg.Timing) // 1 us
	if err != nil {
		t.Fatal(err)
	}
	// 1000 pJ over 1 us = 1e-3 W.
	if math.Abs(pw.Cell-1e-3) > 1e-9 || math.Abs(pw.IOPHY-0.5e-3) > 1e-9 {
		t.Errorf("%+v", pw)
	}
	if math.Abs(pw.Total()-1.5e-3) > 1e-9 {
		t.Errorf("total %v", pw.Total())
	}
	if _, err := ToPower(b, 0, cfg.Timing); err == nil {
		t.Error("zero interval accepted")
	}
}

func TestComputeCountsActivates(t *testing.T) {
	cfg := hbm.PIMHBMConfig(1000)
	p := DefaultParams()
	st := hbm.Stats{ACT: 2, ABACT: 1} // 2 single + 16 broadcast
	b := Compute(st, 1, cfg, p, 1)
	want := 18 * p.ActivatePJ
	if math.Abs(b.Activate-want) > 1e-9 {
		t.Errorf("activate energy %v, want %v", b.Activate, want)
	}
}

package energy

// Params holds the per-event energy constants in picojoules (plus the
// background power). They are calibrated against three anchors the paper
// publishes for the fabricated 20nm part:
//
//  1. Fig. 11: over back-to-back RD streams, PIM-HBM draws ~5.4% more
//     power than HBM while its banks run at 4x the delivered bandwidth;
//  2. Fig. 11's note: eliminating the buffer-die 1024-bit I/O toggle in
//     PIM mode would have made PIM-HBM ~10% *lower* power than HBM, which
//     pins the buffer I/O component at ~10% of HBM streaming power;
//  3. the headline ~3.5x lower energy per bit for PIM-side transfers.
//
// Derivation at 1 GHz (tCCD_S = 2 ns, tCCD_L = 4 ns), per pseudo channel:
//
//	HBM RD stream power  = bg + (cell+iosa + bus + buf + phy)/2ns
//	PIM RD stream power  = bg + (8*(cell+iosa) + 8*fpu + buf)/4ns
//
// With cell+iosa = 120, bus = 170, buf = 122, phy = 200, fpu = 28 and
// bg = 60 mW: HBM = 60 + 612/2 = 366 mW; PIM = 60 + 1306/4 = 386.5 mW
// (+5.6%); buf/4ns = 30.5 mW ~ 10% of 306 mW dynamic; and dynamic energy
// per delivered bit is 612/256 = 2.39 pJ (HBM) vs 1306/2048 = 0.64 pJ
// (PIM), a 3.75x reduction.
type Params struct {
	CellColPJ   float64 // cell-array column activity per 32B bank access
	IOSAColPJ   float64 // IOSA + decoders per 32B bank access
	ActivatePJ  float64 // per-bank row activation
	PrechargePJ float64 // per-bank precharge
	GlobalBusPJ float64 // internal global data bus per off-chip 32B block
	BufferIOPJ  float64 // buffer-die 1024-bit I/O toggle per column command
	IOPHYPJ     float64 // external PHY per off-chip 32B block
	FPUOpPJ     float64 // one 16-lane FP16 arithmetic instruction
	PIMMovePJ   float64 // one 16-lane register move instruction
	ECCCheckPJ  float64 // SEC-DED encode/decode of one 32B block (when enabled)
	RefreshPJ   float64 // one all-bank refresh of a pseudo channel

	BackgroundMWPerPCH float64 // standby + clocking per pseudo channel
}

// DefaultParams returns the calibrated constants described above.
func DefaultParams() Params {
	return Params{
		CellColPJ:          45,
		IOSAColPJ:          75,
		ActivatePJ:         900,
		PrechargePJ:        250,
		GlobalBusPJ:        170,
		BufferIOPJ:         122,
		IOPHYPJ:            200,
		FPUOpPJ:            28,
		PIMMovePJ:          10,
		ECCCheckPJ:         8,
		RefreshPJ:          24000,
		BackgroundMWPerPCH: 60,
	}
}

package pimsim

// Doc-consistency tests: docs/FAULTS.md is a contract document (the
// error taxonomy, the fault profiles, the runbook's metric names), so
// these tests pin its claims against the code. A rename that leaves the
// doc behind fails here instead of silently rotting the runbook.

import (
	"context"
	"os"
	"strings"
	"testing"
	"time"

	"pimsim/internal/fault"
	"pimsim/internal/hbm"
	"pimsim/internal/metrics"
	"pimsim/internal/models"
	"pimsim/internal/serve"
	"pimsim/internal/slo"
)

func readDoc(t *testing.T, path string) string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return string(b)
}

// TestFaultsDocTaxonomyMatchesTypes pins the taxonomy table to the
// typed errors the code actually raises, spelled exactly as a reader
// would import them.
func TestFaultsDocTaxonomyMatchesTypes(t *testing.T) {
	doc := readDoc(t, "docs/FAULTS.md")

	// Compile-time proof the types the doc names still exist.
	var _ *hbm.UncorrectableError
	var _ *fault.ShardDeadError

	for _, name := range []string{"hbm.UncorrectableError", "fault.ShardDeadError"} {
		if !strings.Contains(doc, name) {
			t.Errorf("docs/FAULTS.md does not name typed error %s", name)
		}
	}

	// Every profile the code exposes is documented.
	for _, p := range fault.ProfileNames() {
		if !strings.Contains(doc, "`"+p+"`") {
			t.Errorf("docs/FAULTS.md profile table missing %q (fault.ProfileNames)", p)
		}
	}

	// The HTTP statuses the taxonomy table documents.
	for _, code := range []string{"400", "429", "503", "504", "500"} {
		if !strings.Contains(doc, "| "+code+" ") {
			t.Errorf("docs/FAULTS.md taxonomy table missing status %s", code)
		}
	}
}

// TestFaultsDocMetricsExist boots a server with a corrupting fault
// profile and checks that every metric name the runbook tells an
// operator to watch is actually registered.
func TestFaultsDocMetricsExist(t *testing.T) {
	doc := readDoc(t, "docs/FAULTS.md")

	fc, err := fault.Profile("chaos-mild", 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := serve.New(serve.Config{Shards: 1, Channels: 2, ECC: true, Fault: &fc})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close(context.Background())

	snap := s.Metrics().Snapshot()
	known := make(map[string]bool)
	for name := range snap.Counters {
		known[name] = true
	}
	for name := range snap.Gauges {
		known[name] = true
	}

	// Every `serve_...` / `fault_...` name the runbook cites in backticks
	// must be registered under exactly that name.
	cited := 0
	for _, f := range strings.Fields(doc) {
		name := strings.Trim(f, "`,.")
		if !strings.HasPrefix(name, "serve_") && !strings.HasPrefix(name, "fault_") {
			continue
		}
		cited++
		if !known[name] {
			t.Errorf("docs/FAULTS.md cites metric %q, not registered by the server", name)
		}
	}
	if cited < 10 {
		t.Errorf("docs/FAULTS.md cites only %d serve_/fault_ metrics; runbook section missing?", cited)
	}
}

// TestReadmeLinksFaultsDoc keeps the fault story reachable from the
// front page.
func TestReadmeLinksFaultsDoc(t *testing.T) {
	readme := readDoc(t, "README.md")
	if !strings.Contains(readme, "docs/FAULTS.md") {
		t.Error("README.md does not link docs/FAULTS.md")
	}
}

// TestObservabilityDocMetricsExist boots a plain server and checks that
// every serve_ metric docs/OBSERVABILITY.md tells an operator to watch
// is registered (label-bearing citations like `serve_shard_state{...}`
// are matched by base name).
func TestObservabilityDocMetricsExist(t *testing.T) {
	doc := readDoc(t, "docs/OBSERVABILITY.md")

	s, err := serve.New(serve.Config{Shards: 1, Channels: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close(context.Background())

	snap := s.Metrics().Snapshot()
	base := func(name string) string {
		if i := strings.IndexByte(name, '{'); i >= 0 {
			return name[:i]
		}
		return name
	}
	known := make(map[string]bool)
	for name := range snap.Counters {
		known[base(name)] = true
	}
	for name := range snap.Gauges {
		known[base(name)] = true
	}
	for name := range snap.Histograms {
		known[base(name)] = true
	}

	cited := 0
	for _, f := range strings.Fields(doc) {
		name := strings.Trim(f, "`,.")
		if !strings.HasPrefix(name, "serve_") {
			continue
		}
		cited++
		if !known[base(name)] {
			t.Errorf("docs/OBSERVABILITY.md cites metric %q, not registered by the server", name)
		}
	}
	if cited < 5 {
		t.Errorf("docs/OBSERVABILITY.md cites only %d serve_ metrics; health section missing?", cited)
	}
}

// TestObservabilityDocNamesSurface pins the flags, endpoints and headers
// the doc teaches against the strings the binaries actually define, so
// a flag rename cannot silently rot the page.
func TestObservabilityDocNamesSurface(t *testing.T) {
	doc := readDoc(t, "docs/OBSERVABILITY.md")
	for _, surface := range []string{
		"-timeline", "-trace-dir", "-trace-buf", "-slow-request", "-pprof-addr",
		"/debug/trace", "X-Request-ID", "spans.json",
	} {
		if !strings.Contains(doc, surface) {
			t.Errorf("docs/OBSERVABILITY.md does not mention %s", surface)
		}
	}

	// The flags the doc teaches must exist in the binaries' source.
	pimserve := readDoc(t, "cmd/pimserve/main.go")
	for _, flagName := range []string{`"trace"`, `"trace-dir"`, `"trace-buf"`, `"slow-request"`, `"pprof-addr"`} {
		if !strings.Contains(pimserve, flagName) {
			t.Errorf("cmd/pimserve does not define flag %s named by docs/OBSERVABILITY.md", flagName)
		}
	}
	pimsim := readDoc(t, "cmd/pimsim/main.go")
	if !strings.Contains(pimsim, `"timeline"`) {
		t.Error("cmd/pimsim does not define the -timeline flag named by docs/OBSERVABILITY.md")
	}
}

// TestReadmeLinksObservabilityDoc keeps the observability story
// reachable from the front page.
func TestReadmeLinksObservabilityDoc(t *testing.T) {
	readme := readDoc(t, "README.md")
	if !strings.Contains(readme, "docs/OBSERVABILITY.md") {
		t.Error("README.md does not link docs/OBSERVABILITY.md")
	}
}

// TestDesignDocSeqMetricsExist boots a server with a sequence model
// resident and checks that every serve_seq_ metric DESIGN.md's model
// serving section cites is registered under exactly that name.
func TestDesignDocSeqMetricsExist(t *testing.T) {
	doc := readDoc(t, "DESIGN.md")

	cfg, ok := models.ServingConfigByName("ds2-small")
	if !ok {
		t.Fatal("ds2-small missing from models.ServingConfigs")
	}
	s, err := serve.New(serve.Config{Shards: 1, Channels: 2, SeqModels: []models.Config{cfg}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close(context.Background())

	snap := s.Metrics().Snapshot()
	known := make(map[string]bool)
	for name := range snap.Counters {
		known[name] = true
	}
	for name := range snap.Histograms {
		known[name] = true
	}

	cited := 0
	for _, f := range strings.Fields(doc) {
		name := strings.Trim(f, "`,.")
		if !strings.HasPrefix(name, "serve_seq_") {
			continue
		}
		cited++
		if !known[name] {
			t.Errorf("DESIGN.md cites metric %q, not registered by the server", name)
		}
	}
	if cited < 5 {
		t.Errorf("DESIGN.md cites only %d serve_seq_ metrics; continuous batching section missing?", cited)
	}
}

// TestServingDocMetricsExist boots a multi-tenant server with hedging
// armed and checks that every serve_ metric the serving handbook tells
// an operator to watch is registered (label-bearing citations like
// `serve_tenant_shed_total{...}` are matched by base name).
func TestServingDocMetricsExist(t *testing.T) {
	doc := readDoc(t, "docs/SERVING.md")

	s, err := serve.New(serve.Config{
		Shards: 2, Channels: 2,
		HedgeDelay: time.Millisecond,
		Tenants: []serve.TenantSpec{
			{Name: "gold", Weight: 4, Priority: 10},
			{Name: "free", Weight: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close(context.Background())

	snap := s.Metrics().Snapshot()
	base := func(name string) string {
		if i := strings.IndexByte(name, '{'); i >= 0 {
			return name[:i]
		}
		return name
	}
	known := make(map[string]bool)
	for name := range snap.Counters {
		known[base(name)] = true
	}
	for name := range snap.Gauges {
		known[base(name)] = true
	}
	for name := range snap.Histograms {
		known[base(name)] = true
	}

	cited := 0
	for _, f := range strings.Fields(doc) {
		name := strings.Trim(f, "`,.")
		if !strings.HasPrefix(name, "serve_") {
			continue
		}
		cited++
		if !known[base(name)] {
			t.Errorf("docs/SERVING.md cites metric %q, not registered by the server", name)
		}
	}
	if cited < 8 {
		t.Errorf("docs/SERVING.md cites only %d serve_ metrics; what-to-watch section missing?", cited)
	}
}

// TestServingDocNamesSurface pins the flags, headers, shed reasons and
// make targets the serving handbook teaches against the strings the
// code actually defines, so a rename cannot silently rot the runbook.
func TestServingDocNamesSurface(t *testing.T) {
	doc := readDoc(t, "docs/SERVING.md")
	for _, surface := range []string{
		"-tenant", "-hedge-delay", "-queue-depth", "-batch-wait", "-timeout",
		"X-Tenant", "Retry-After", "make qos-drill", "qos_tenants.json",
		"`" + serve.DefaultTenant + "`",
	} {
		if !strings.Contains(doc, surface) {
			t.Errorf("docs/SERVING.md does not mention %s", surface)
		}
	}

	// The shed taxonomy the doc documents is exactly the one the code
	// attaches to rejections (compile-time: the constants must exist).
	for _, reason := range []string{serve.ShedQueueFull, serve.ShedByPriority, serve.ShedDeadlineExpired} {
		if !strings.Contains(doc, "`"+reason+"`") {
			t.Errorf("docs/SERVING.md does not document shed reason `%s`", reason)
		}
	}

	// Every drill scenario is described in both the handbook and the
	// README's QoS table.
	readme := readDoc(t, "README.md")
	for _, name := range serve.QoSScenarioNames() {
		if !strings.Contains(doc, name) {
			t.Errorf("docs/SERVING.md scenario table missing %q (serve.QoSScenarioNames)", name)
		}
		if !strings.Contains(readme, name) {
			t.Errorf("README.md QoS table missing scenario %q", name)
		}
	}

	pimserve := readDoc(t, "cmd/pimserve/main.go")
	for _, flagName := range []string{`"tenant"`, `"hedge-delay"`} {
		if !strings.Contains(pimserve, flagName) {
			t.Errorf("cmd/pimserve does not define flag %s named by docs/SERVING.md", flagName)
		}
	}
	pimload := readDoc(t, "cmd/pimload/main.go")
	for _, flagName := range []string{`"qos"`, `"scenario"`, `"out"`} {
		if !strings.Contains(pimload, flagName) {
			t.Errorf("cmd/pimload does not define flag %s named by docs/SERVING.md", flagName)
		}
	}
}

// TestDocsReadmeIndex keeps docs/README.md an honest index: every page
// in docs/ is listed, and the index never names a page that is gone.
func TestDocsReadmeIndex(t *testing.T) {
	index := readDoc(t, "docs/README.md")
	entries, err := os.ReadDir("docs")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := e.Name()
		if name == "README.md" || !strings.HasSuffix(name, ".md") {
			continue
		}
		if !strings.Contains(index, name) {
			t.Errorf("docs/README.md index does not list docs/%s", name)
		}
	}
	// Every page the index links must exist on disk.
	for _, page := range []string{"SERVING.md", "FAULTS.md", "OBSERVABILITY.md"} {
		if _, err := os.Stat("docs/" + page); err != nil {
			t.Errorf("docs/README.md links docs/%s: %v", page, err)
		}
	}
}

// TestReadmeLinksServingDoc keeps the QoS/serving-operations story
// reachable from the front page.
func TestReadmeLinksServingDoc(t *testing.T) {
	readme := readDoc(t, "README.md")
	for _, link := range []string{"docs/SERVING.md", "docs/README.md"} {
		if !strings.Contains(readme, link) {
			t.Errorf("README.md does not link %s", link)
		}
	}
}

// TestModelServingDocNamesSurface pins the flags and endpoints the
// model-serving docs teach against the strings the binaries define, and
// keeps the README's model-serving table present.
func TestModelServingDocNamesSurface(t *testing.T) {
	readme := readDoc(t, "README.md")
	for _, surface := range []string{
		"-seq-models", "/v1/models", "continuous batching", "make model-smoke",
	} {
		if !strings.Contains(readme, surface) {
			t.Errorf("README.md does not mention %s", surface)
		}
	}
	if !strings.Contains(readme, "| continuous batching |") {
		t.Error("README.md model-serving table missing its continuous batching row")
	}

	design := readDoc(t, "DESIGN.md")
	for _, surface := range []string{"internal/nn", "SeqAdmit", "/v1/models", "HostOracle"} {
		if !strings.Contains(design, surface) {
			t.Errorf("DESIGN.md model serving section does not mention %s", surface)
		}
	}

	pimserve := readDoc(t, "cmd/pimserve/main.go")
	for _, flagName := range []string{`"seq-models"`, `"seq-admit"`, `"max-seqlen"`, `"model-batch-wait"`} {
		if !strings.Contains(pimserve, flagName) {
			t.Errorf("cmd/pimserve does not define flag %s named by the docs", flagName)
		}
	}
	pimload := readDoc(t, "cmd/pimload/main.go")
	for _, flagName := range []string{`"seq"`, `"seqlen-dist"`, `"seqs"`, `"eos"`} {
		if !strings.Contains(pimload, flagName) {
			t.Errorf("cmd/pimload does not define flag %s named by the docs", flagName)
		}
	}
}

// TestSLODocMetricsExist checks every serve_ metric docs/SLO.md cites:
// the unconditional window metrics against a booted server, and the
// lazily-created serve_slo_ series against an engine that has seen one
// request (label-bearing citations are matched by base name).
func TestSLODocMetricsExist(t *testing.T) {
	doc := readDoc(t, "docs/SLO.md")

	s, err := serve.New(serve.Config{Shards: 1, Channels: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close(context.Background())

	// serve_slo_ series are created on first record: drive one request
	// through a standalone engine with an objective and a hedge armed.
	reg := metrics.New(1)
	eng := slo.New(slo.Config{
		Objectives: []slo.Objective{{LatencyP99: 10 * time.Millisecond, Availability: 0.99}},
		EvalEvery:  -1,
		Hedge:      &slo.HedgeConfig{Initial: 2 * time.Millisecond},
	}, reg)
	eng.RecordAdmit("default", "tiny")
	eng.RecordRequest("default", "tiny", time.Millisecond, slo.OutcomeOK, "req-1")
	eng.Evaluate()

	base := func(name string) string {
		if i := strings.IndexByte(name, '{'); i >= 0 {
			return name[:i]
		}
		return name
	}
	known := make(map[string]bool)
	for _, snap := range []*metrics.Snapshot{s.Metrics().Snapshot(), reg.Snapshot()} {
		for name := range snap.Counters {
			known[base(name)] = true
		}
		for name := range snap.Gauges {
			known[base(name)] = true
		}
		for name := range snap.Histograms {
			known[base(name)] = true
		}
	}

	cited := 0
	for _, f := range strings.Fields(doc) {
		name := strings.Trim(f, "`,.()")
		if !strings.HasPrefix(name, "serve_") {
			continue
		}
		cited++
		if !known[base(name)] {
			t.Errorf("docs/SLO.md cites metric %q, not registered", name)
		}
	}
	if cited < 8 {
		t.Errorf("docs/SLO.md cites only %d serve_ metrics; metrics section missing?", cited)
	}
}

// TestSLODocNamesSurface pins the flags, endpoints and make targets
// docs/SLO.md teaches against the strings the binaries define.
func TestSLODocNamesSurface(t *testing.T) {
	doc := readDoc(t, "docs/SLO.md")
	for _, surface := range []string{
		"-slo", "-slo-hedge", "-slo-hedge-min", "-slo-hedge-max",
		"/debug/ops", "/debug/slow", "pimtop", "-once",
		"make slo-drill", "slo_ops.json",
	} {
		if !strings.Contains(doc, surface) {
			t.Errorf("docs/SLO.md does not mention %s", surface)
		}
	}

	pimserve := readDoc(t, "cmd/pimserve/main.go")
	for _, flagName := range []string{`"slo"`, `"slo-hedge"`, `"slo-hedge-min"`, `"slo-hedge-max"`} {
		if !strings.Contains(pimserve, flagName) {
			t.Errorf("cmd/pimserve does not define flag %s named by docs/SLO.md", flagName)
		}
	}
	pimload := readDoc(t, "cmd/pimload/main.go")
	if !strings.Contains(pimload, `"slo"`) {
		t.Error("cmd/pimload does not define the -slo flag named by docs/SLO.md")
	}
	pimtop := readDoc(t, "cmd/pimtop/main.go")
	for _, flagName := range []string{`"url"`, `"interval"`, `"once"`} {
		if !strings.Contains(pimtop, flagName) {
			t.Errorf("cmd/pimtop does not define flag %s named by docs/SLO.md", flagName)
		}
	}
}

// TestReadmeLinksSLODoc keeps the SLO story reachable from the front
// page.
func TestReadmeLinksSLODoc(t *testing.T) {
	readme := readDoc(t, "README.md")
	if !strings.Contains(readme, "docs/SLO.md") {
		t.Error("README.md does not link docs/SLO.md")
	}
}

package pimsim

// Doc-consistency tests: docs/FAULTS.md is a contract document (the
// error taxonomy, the fault profiles, the runbook's metric names), so
// these tests pin its claims against the code. A rename that leaves the
// doc behind fails here instead of silently rotting the runbook.

import (
	"context"
	"os"
	"strings"
	"testing"

	"pimsim/internal/fault"
	"pimsim/internal/hbm"
	"pimsim/internal/serve"
)

func readDoc(t *testing.T, path string) string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return string(b)
}

// TestFaultsDocTaxonomyMatchesTypes pins the taxonomy table to the
// typed errors the code actually raises, spelled exactly as a reader
// would import them.
func TestFaultsDocTaxonomyMatchesTypes(t *testing.T) {
	doc := readDoc(t, "docs/FAULTS.md")

	// Compile-time proof the types the doc names still exist.
	var _ *hbm.UncorrectableError
	var _ *fault.ShardDeadError

	for _, name := range []string{"hbm.UncorrectableError", "fault.ShardDeadError"} {
		if !strings.Contains(doc, name) {
			t.Errorf("docs/FAULTS.md does not name typed error %s", name)
		}
	}

	// Every profile the code exposes is documented.
	for _, p := range fault.ProfileNames() {
		if !strings.Contains(doc, "`"+p+"`") {
			t.Errorf("docs/FAULTS.md profile table missing %q (fault.ProfileNames)", p)
		}
	}

	// The HTTP statuses the taxonomy table documents.
	for _, code := range []string{"400", "429", "503", "504", "500"} {
		if !strings.Contains(doc, "| "+code+" ") {
			t.Errorf("docs/FAULTS.md taxonomy table missing status %s", code)
		}
	}
}

// TestFaultsDocMetricsExist boots a server with a corrupting fault
// profile and checks that every metric name the runbook tells an
// operator to watch is actually registered.
func TestFaultsDocMetricsExist(t *testing.T) {
	doc := readDoc(t, "docs/FAULTS.md")

	fc, err := fault.Profile("chaos-mild", 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := serve.New(serve.Config{Shards: 1, Channels: 2, ECC: true, Fault: &fc})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close(context.Background())

	snap := s.Metrics().Snapshot()
	known := make(map[string]bool)
	for name := range snap.Counters {
		known[name] = true
	}
	for name := range snap.Gauges {
		known[name] = true
	}

	// Every `serve_...` / `fault_...` name the runbook cites in backticks
	// must be registered under exactly that name.
	cited := 0
	for _, f := range strings.Fields(doc) {
		name := strings.Trim(f, "`,.")
		if !strings.HasPrefix(name, "serve_") && !strings.HasPrefix(name, "fault_") {
			continue
		}
		cited++
		if !known[name] {
			t.Errorf("docs/FAULTS.md cites metric %q, not registered by the server", name)
		}
	}
	if cited < 10 {
		t.Errorf("docs/FAULTS.md cites only %d serve_/fault_ metrics; runbook section missing?", cited)
	}
}

// TestReadmeLinksFaultsDoc keeps the fault story reachable from the
// front page.
func TestReadmeLinksFaultsDoc(t *testing.T) {
	readme := readDoc(t, "README.md")
	if !strings.Contains(readme, "docs/FAULTS.md") {
		t.Error("README.md does not link docs/FAULTS.md")
	}
}

// TestObservabilityDocMetricsExist boots a plain server and checks that
// every serve_ metric docs/OBSERVABILITY.md tells an operator to watch
// is registered (label-bearing citations like `serve_shard_state{...}`
// are matched by base name).
func TestObservabilityDocMetricsExist(t *testing.T) {
	doc := readDoc(t, "docs/OBSERVABILITY.md")

	s, err := serve.New(serve.Config{Shards: 1, Channels: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close(context.Background())

	snap := s.Metrics().Snapshot()
	base := func(name string) string {
		if i := strings.IndexByte(name, '{'); i >= 0 {
			return name[:i]
		}
		return name
	}
	known := make(map[string]bool)
	for name := range snap.Counters {
		known[base(name)] = true
	}
	for name := range snap.Gauges {
		known[base(name)] = true
	}
	for name := range snap.Histograms {
		known[base(name)] = true
	}

	cited := 0
	for _, f := range strings.Fields(doc) {
		name := strings.Trim(f, "`,.")
		if !strings.HasPrefix(name, "serve_") {
			continue
		}
		cited++
		if !known[base(name)] {
			t.Errorf("docs/OBSERVABILITY.md cites metric %q, not registered by the server", name)
		}
	}
	if cited < 5 {
		t.Errorf("docs/OBSERVABILITY.md cites only %d serve_ metrics; health section missing?", cited)
	}
}

// TestObservabilityDocNamesSurface pins the flags, endpoints and headers
// the doc teaches against the strings the binaries actually define, so
// a flag rename cannot silently rot the page.
func TestObservabilityDocNamesSurface(t *testing.T) {
	doc := readDoc(t, "docs/OBSERVABILITY.md")
	for _, surface := range []string{
		"-timeline", "-trace-dir", "-trace-buf", "-slow-request", "-pprof-addr",
		"/debug/trace", "X-Request-ID", "spans.json",
	} {
		if !strings.Contains(doc, surface) {
			t.Errorf("docs/OBSERVABILITY.md does not mention %s", surface)
		}
	}

	// The flags the doc teaches must exist in the binaries' source.
	pimserve := readDoc(t, "cmd/pimserve/main.go")
	for _, flagName := range []string{`"trace"`, `"trace-dir"`, `"trace-buf"`, `"slow-request"`, `"pprof-addr"`} {
		if !strings.Contains(pimserve, flagName) {
			t.Errorf("cmd/pimserve does not define flag %s named by docs/OBSERVABILITY.md", flagName)
		}
	}
	pimsim := readDoc(t, "cmd/pimsim/main.go")
	if !strings.Contains(pimsim, `"timeline"`) {
		t.Error("cmd/pimsim does not define the -timeline flag named by docs/OBSERVABILITY.md")
	}
}

// TestReadmeLinksObservabilityDoc keeps the observability story
// reachable from the front page.
func TestReadmeLinksObservabilityDoc(t *testing.T) {
	readme := readDoc(t, "README.md")
	if !strings.Contains(readme, "docs/OBSERVABILITY.md") {
		t.Error("README.md does not link docs/OBSERVABILITY.md")
	}
}

// Package pimsim is a Go reproduction of "Hardware Architecture and
// Software Stack for PIM Based on Commercial DRAM Technology" (ISCA 2021,
// Samsung HBM-PIM): a functional and cycle-level simulator of the PIM-HBM
// device, the JEDEC memory controller that drives it, the full PIM
// software stack (device driver, runtime, BLAS, ML framework), the host
// processor baseline, and a harness that regenerates every table and
// figure of the paper's evaluation.
//
// Start with README.md, DESIGN.md and the examples/ directory; run
// `go run ./cmd/pimbench -exp all` to regenerate the evaluation.
package pimsim

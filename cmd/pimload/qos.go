package main

import (
	"encoding/json"
	"fmt"
	"os"

	"pimsim/internal/serve"
)

// runQoS executes the QoS scenario matrix (docs/SERVING.md): each named
// scenario boots its own in-process server, shapes multi-tenant queue
// state deterministically, and evaluates the pinned admission/fairness
// assertions in internal/serve. The -out artifact carries every
// per-tenant quantile row (qos_tenants.json in CI); any violation fails
// the run.
func runQoS(scenario string, seed int64, out string) error {
	names := serve.QoSScenarioNames()
	if scenario != "all" {
		names = []string{scenario}
	}
	reports := make([]*serve.QoSReport, 0, len(names))
	failed := false
	for _, name := range names {
		rep, err := serve.RunQoSScenario(name, seed)
		if err != nil {
			return err
		}
		fmt.Print(rep)
		reports = append(reports, rep)
		if !rep.Pass() {
			failed = true
		}
	}
	if out != "" {
		blob, err := json.MarshalIndent(struct {
			Scenarios []*serve.QoSReport `json:"scenarios"`
		}{reports}, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", out)
	}
	if failed {
		return fmt.Errorf("qos: pinned assertions failed")
	}
	return nil
}

package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"pimsim/internal/fault"
	"pimsim/internal/metrics"
	"pimsim/internal/obs"
	"pimsim/internal/serve"
)

// chaosOpts parameterizes the three-phase chaos drill.
type chaosOpts struct {
	profile     string
	seed        int64
	model       string
	mode        string
	conc, reqs  int
	rate        float64
	recoverFrac float64 // recovery throughput floor, fraction of baseline
	maxErrFrac  float64 // tolerated non-OK fraction during the chaos phase
}

// runChaos is the acceptance drill behind `make chaos` and the CI smoke
// step (docs/FAULTS.md "Verifying the fault story"). Three phases, all
// with oracle verification on:
//
//  1. Baseline: a fault-free server with the ECC engine enabled, to price
//     the ECC overhead into the reference throughput.
//  2. Chaos: an identical server with the named fault profile injected.
//     The contract under fire: zero wrong answers ever, and the error
//     rate (all non-200s) stays under maxErrFrac.
//  3. Recovery: the same faulted server again, after waiting for every
//     shard to revive. Throughput must be back to recoverFrac of the
//     baseline — eviction is a transient, not a ratchet.
func runChaos(o chaosOpts, base serve.Config, verify bool) error {
	base.ECC = true
	// Both servers run with the flight recorder armed — the recovery
	// verdict compares throughput against the baseline, so the baseline
	// must pay the same tracing cost.
	base.Tracer = obs.NewTracer(1 << 14)

	log.Printf("pimload: chaos phase 1/3: fault-free ECC-on baseline (%d requests)", o.reqs)
	baseline, err := runAgainst(base, o.model, o.mode, o.conc, o.reqs, o.rate, verify)
	if err != nil {
		return fmt.Errorf("baseline run: %w", err)
	}
	fmt.Printf("baseline (ECC on, no faults):\n%s", baseline)

	fc, err := fault.Profile(o.profile, o.seed)
	if err != nil {
		return err
	}
	cfg := base
	cfg.Fault = &fc
	// The faulted server gets its own recorder: part of the verdict below
	// is that re-dispatches show up as spans attached to the affected
	// request IDs.
	tracer := obs.NewTracer(1 << 14)
	cfg.Tracer = tracer

	s, err := serve.New(cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)
	defer func() {
		ctx, cancel := ctxTimeout(30 * time.Second)
		defer cancel()
		hs.Shutdown(ctx)
		if err := s.Close(ctx); err != nil {
			log.Printf("pimload: chaos drain: %v", err)
		}
	}()
	url := "http://" + ln.Addr().String()

	log.Printf("pimload: chaos phase 2/3: profile %s, seed %d (%d requests)", o.profile, o.seed, o.reqs)
	chaos, err := runRemote(url, o.model, o.mode, o.conc, o.reqs, o.rate, verify)
	if err != nil {
		return fmt.Errorf("chaos run: %w", err)
	}
	fmt.Printf("under %s:\n%s", o.profile, chaos)

	if err := waitHealthy(url, cfg.Shards, 15*time.Second); err != nil {
		return err
	}
	snap, err := fetchMetrics(url)
	if err != nil {
		return err
	}

	log.Printf("pimload: chaos phase 3/3: post-recovery (%d requests)", o.reqs)
	recovered, err := runRemote(url, o.model, o.mode, o.conc, o.reqs, o.rate, verify)
	if err != nil {
		return fmt.Errorf("recovery run: %w", err)
	}
	fmt.Printf("after recovery:\n%s", recovered)

	// The verdicts. Wrong data is a hard zero across every phase.
	var fails []string
	for phase, r := range map[string]*serve.Report{"baseline": baseline, "chaos": chaos, "recovery": recovered} {
		if r.BadOutputs != 0 {
			fails = append(fails, fmt.Sprintf("%s: %d responses carried wrong data", phase, r.BadOutputs))
		}
	}
	if errFrac := float64(chaos.Sent-chaos.OK) / float64(chaos.Sent); errFrac > o.maxErrFrac {
		fails = append(fails, fmt.Sprintf("chaos error rate %.1f%% exceeds the %.0f%% budget",
			100*errFrac, 100*o.maxErrFrac))
	}
	if fc.DieAfterBatches > 0 {
		if ev := snap.Counter("serve_shard_evictions_total"); ev < 1 {
			fails = append(fails, "the injected outage never evicted a shard")
		}
		if rv := snap.Counter("serve_shard_revivals_total"); rv < 1 {
			fails = append(fails, "no shard revived before the recovery phase")
		}
	}
	if fc.CorruptsData() {
		if bf := snap.Counter("fault_bit_flips_total"); bf < 1 {
			fails = append(fails, "the injector reported zero bit flips — nothing was actually injected")
		}
	}
	// Recovery is judged on wall throughput: the profile keeps injecting
	// latency spikes and bit flips after the outage revives (they are the
	// environment, not the incident), so simulated-device throughput stays
	// depressed by design — what must recover is the service's ability to
	// answer requests at its fault-free pace.
	floor := o.recoverFrac * baseline.ThroughputRPS
	if recovered.ThroughputRPS < floor {
		fails = append(fails, fmt.Sprintf("recovery throughput %.1f req/s below %.0f%% of the %.1f req/s baseline",
			recovered.ThroughputRPS, 100*o.recoverFrac, baseline.ThroughputRPS))
	}
	// Tracing verdict: every re-dispatch the metrics counted must be
	// reconstructible from the flight recorder — a "redispatch" event
	// naming the request it hit (and, for each, a root span sharing that
	// ID, unless the ring has since evicted it).
	spans := tracer.Snapshot()
	var redispatch, linked int
	for _, sp := range spans {
		if sp.Name != "redispatch" || sp.Req == "" {
			continue
		}
		redispatch++
		for _, other := range spans {
			if other.Req == sp.Req && other.Name == "request" {
				linked++
				break
			}
		}
	}
	if retries := snap.Counter("serve_retries_total"); retries > 0 && redispatch == 0 {
		fails = append(fails, fmt.Sprintf("metrics counted %d retries but the flight recorder holds no redispatch spans", retries))
	}
	fmt.Printf("flight recorder: %d spans (%d total recorded), %d redispatch events, %d linked to request roots\n",
		len(spans), tracer.Total(), redispatch, linked)

	fmt.Printf("chaos verdict: %d ok / %d sent under fire, %d wrong answers, recovery at %.0f%% of baseline\n",
		chaos.OK, chaos.Sent, chaos.BadOutputs, 100*recovered.ThroughputRPS/baseline.ThroughputRPS)
	if len(fails) > 0 {
		for _, f := range fails {
			log.Printf("pimload: chaos FAIL: %s", f)
		}
		return fmt.Errorf("chaos drill failed %d check(s)", len(fails))
	}
	return nil
}

// waitHealthy polls /healthz until every shard reports healthy.
func waitHealthy(base string, shards int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			var h struct {
				Healthy int `json:"shards_healthy"`
			}
			err = json.NewDecoder(resp.Body).Decode(&h)
			resp.Body.Close()
			if err == nil && h.Healthy >= shards {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("shards did not all revive within %v", timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func fetchMetrics(base string) (*metrics.Snapshot, error) {
	resp, err := http.Get(base + "/metrics.json")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var snap metrics.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, err
	}
	return &snap, nil
}

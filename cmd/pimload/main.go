// pimload is the load generator for pimserve. It drives a serve endpoint
// (or an in-process server it boots itself) with a closed- or open-loop
// arrival process, verifies outputs against the software oracle, and
// reports throughput, latency quantiles (wall and simulated device
// cycles), batch-size histograms and queue depth.
//
// With -bench it also emits `go test -bench`-shaped result lines, so the
// output pipes straight into tools/benchjson:
//
//	pimload -compare -bench | go run ./tools/benchjson -out BENCH_serve.json
//
// -compare runs the batching A/B the paper's serving story rests on: the
// same pool once with the dynamic batcher on (max batch = channel count)
// and once pinned to batch size 1, and prints the throughput gain.
//
// -chaos runs the three-phase fault drill from docs/FAULTS.md: a
// fault-free ECC-on baseline, a verified run under an injected fault
// profile (zero wrong answers or the drill fails), and a post-recovery
// run that must reach -recover-frac of the baseline throughput.
//
// -qos runs the four-scenario admission-control matrix from
// docs/SERVING.md (overload, bursty, mixed-priority, slow-tenant), each
// with pinned per-tenant assertions; -out writes the per-tenant
// quantile rows as JSON (the qos_tenants.json CI artifact):
//
//	pimload -qos -scenario all -out qos_tenants.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"pimsim/internal/serve"
	"pimsim/internal/slo"
)

func ctxTimeout(d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), d)
}

func decodeJSON(r io.Reader, v any) error { return json.NewDecoder(r).Decode(v) }

func main() {
	var (
		url     = flag.String("url", "", "target pimserve base URL (empty: boot an in-process server)")
		model   = flag.String("model", "micro-256x256", "model to drive")
		mode    = flag.String("mode", "closed", "arrival process: closed or open")
		conc    = flag.Int("conc", 8, "closed-loop in-flight requests / open-loop senders")
		reqs    = flag.Int("requests", 256, "total requests")
		rate    = flag.Float64("rate", 0, "open-loop arrival rate (req/s)")
		verify  = flag.Bool("verify", true, "check outputs against the software oracle")
		bench   = flag.Bool("bench", false, "emit go-bench result lines for tools/benchjson")
		compare = flag.Bool("compare", false, "in-process A/B: dynamic batching vs batch-size-1")
		minGain = flag.Float64("min-gain", 0, "with -compare: exit nonzero if the batching gain is below this")

		shards     = flag.Int("shards", 2, "in-process server: shards")
		channels   = flag.Int("channels", 4, "in-process server: channels per shard")
		batchWait  = flag.Duration("batch-wait", 2*time.Millisecond, "in-process server: batcher flush timeout")
		queueDepth = flag.Int("queue-depth", 64, "in-process server: admission queue depth")

		seq      = flag.Bool("seq", false, "sequence mode: drive continuous batching with multi-step LSTM sequences")
		seqDist  = flag.String("seqlen-dist", "uniform:8:24", "with -seq: per-sequence frame counts, fixed:N or uniform:A:B")
		seqs     = flag.Int("seqs", 64, "with -seq: total sequences")
		seqEOS   = flag.Int("eos", -1, "with -seq: EOS class for early retirement (<0 disables)")
		seqAdmit = flag.Int("seq-admit", 0, "with -seq: in-process stepper admission cap (0 = every channel)")
		seed     = flag.Int64("seed", 1, "with -seq/-qos: workload RNG seed")

		qos      = flag.Bool("qos", false, "run the QoS scenario matrix with pinned admission/fairness assertions")
		scenario = flag.String("scenario", "all", "with -qos: one scenario name, or \"all\" (overload, bursty, mixed-priority, slow-tenant)")
		out      = flag.String("out", "", "with -qos: write the per-tenant quantile report JSON here (e.g. qos_tenants.json)")

		sloSpec = flag.String("slo", "", "gate the run on an SLO, p99=<dur>[,avail=<pct>] (e.g. p99=50ms,avail=0.99): print a machine-readable verdict line and exit nonzero on violation")

		chaos       = flag.Bool("chaos", false, "run the three-phase fault drill (baseline / chaos / recovery)")
		profile     = flag.String("fault-profile", "chaos-mild", "with -chaos: fault profile to inject")
		faultSeed   = flag.Int64("fault-seed", 42, "with -chaos: injector seed")
		recoverFrac = flag.Float64("recover-frac", 0.9, "with -chaos: post-recovery throughput floor (fraction of baseline)")
		maxErrFrac  = flag.Float64("max-err-frac", 0.5, "with -chaos: tolerated non-OK fraction under fire")
	)
	flag.Parse()

	var sloObj *slo.Objective
	if *sloSpec != "" {
		o, err := slo.ParseObjective(*sloSpec)
		if err != nil {
			log.Fatalf("pimload: -slo: %v", err)
		}
		sloObj = &o
	}

	if *compare && *url != "" {
		log.Fatal("pimload: -compare boots its own servers; drop -url")
	}
	if *qos {
		if *url != "" || *compare || *chaos || *seq {
			log.Fatal("pimload: -qos boots its own servers; drop -url/-compare/-chaos/-seq")
		}
		if err := runQoS(*scenario, *seed, *out); err != nil {
			log.Fatalf("pimload: %v", err)
		}
		return
	}
	if *seq {
		if *chaos {
			log.Fatal("pimload: -seq and -chaos are separate drills")
		}
		name := *model
		if name == "micro-256x256" {
			name = "ds2-small" // the GEMV default is meaningless here
		}
		o := seqOpts{
			model: name, dist: *seqDist, seqs: *seqs, conc: *conc,
			eos: *seqEOS, seed: *seed, verify: *verify,
			bench: *bench, compare: *compare, minGain: *minGain,
		}
		base := serve.Config{
			Shards: *shards, Channels: *channels,
			QueueDepth: *queueDepth, SeqAdmit: *seqAdmit,
			RequestTimeout: 60 * time.Second,
		}
		if err := runSeqMode(o, base, *url); err != nil {
			log.Fatalf("pimload: %v", err)
		}
		return
	}
	if *chaos {
		if *url != "" || *compare {
			log.Fatal("pimload: -chaos boots its own servers; drop -url/-compare")
		}
		o := chaosOpts{
			profile: *profile, seed: *faultSeed,
			model: *model, mode: *mode, conc: *conc, reqs: *reqs, rate: *rate,
			recoverFrac: *recoverFrac, maxErrFrac: *maxErrFrac,
		}
		base := serve.Config{
			Shards: *shards, Channels: *channels,
			BatchWait: *batchWait, QueueDepth: *queueDepth,
		}
		if err := runChaos(o, base, *verify); err != nil {
			log.Fatalf("pimload: %v", err)
		}
		return
	}

	srvCfg := func(maxBatch int) serve.Config {
		return serve.Config{
			Shards: *shards, Channels: *channels, MaxBatch: maxBatch,
			BatchWait: *batchWait, QueueDepth: *queueDepth,
		}
	}

	if *compare {
		batched, err := runAgainst(srvCfg(0), *model, *mode, *conc, *reqs, *rate, *verify)
		if err != nil {
			log.Fatalf("pimload: batched run: %v", err)
		}
		serial, err := runAgainst(srvCfg(1), *model, *mode, *conc, *reqs, *rate, *verify)
		if err != nil {
			log.Fatalf("pimload: batch-1 run: %v", err)
		}
		gain := 0.0
		if serial.SimThroughputRPS > 0 {
			gain = batched.SimThroughputRPS / serial.SimThroughputRPS
		}
		if *bench {
			printBench("dynamic", batched)
			printBench("batch1", serial)
			fmt.Printf("BenchmarkServe/gain-1 1 0 ns/op %.3f x_gain\n", gain)
		} else {
			fmt.Printf("dynamic batching (max %d):\n%s", *channels, batched)
			fmt.Printf("batch size 1:\n%s", serial)
			fmt.Printf("simulated-device throughput gain: %.2fx\n", gain)
		}
		if *minGain > 0 && gain < *minGain {
			log.Fatalf("pimload: batching gain %.2fx below required %.2fx", gain, *minGain)
		}
		// The SLO gate judges the production configuration (dynamic
		// batching), not the batch-1 baseline.
		if !checkSLO(sloObj, batched) {
			os.Exit(1)
		}
		return
	}

	var rep *serve.Report
	var err error
	if *url == "" {
		rep, err = runAgainst(srvCfg(0), *model, *mode, *conc, *reqs, *rate, *verify)
	} else {
		rep, err = runRemote(*url, *model, *mode, *conc, *reqs, *rate, *verify)
	}
	if err != nil {
		log.Fatalf("pimload: %v", err)
	}
	if *bench {
		printBench(*mode, rep)
	} else {
		fmt.Print(rep)
	}
	sloOK := checkSLO(sloObj, rep)
	if rep.Failures > 0 || rep.BadOutputs > 0 || !sloOK {
		os.Exit(1)
	}
}

// checkSLO prints one machine-readable verdict line and reports whether
// the run met the objective. The line is not go-bench shaped, so it
// passes through tools/benchjson untouched. Availability counts every
// sent request; a rejected or timed-out request spends budget exactly
// like the serving layer's own accounting.
func checkSLO(o *slo.Objective, r *serve.Report) bool {
	if o == nil {
		return true
	}
	avail := 0.0
	if r.Sent > 0 {
		avail = float64(r.OK) / float64(r.Sent)
	}
	p99 := time.Duration(r.WallP99Us) * time.Microsecond
	ok := p99 <= o.LatencyP99 && avail >= o.Availability
	verdict := "pass"
	if !ok {
		verdict = "fail"
	}
	fmt.Printf("SLO verdict=%s model=%s p99_us=%.0f p99_target_us=%d avail=%.4f avail_target=%.4f sent=%d ok=%d\n",
		verdict, r.Model, r.WallP99Us, o.LatencyP99.Microseconds(), avail, o.Availability, r.Sent, r.OK)
	return ok
}

// runAgainst boots an in-process server with cfg, drives it, and shuts it
// down gracefully (a zero-drop drain is part of every run).
func runAgainst(cfg serve.Config, model, mode string, conc, reqs int, rate float64, verify bool) (*serve.Report, error) {
	s, err := serve.New(cfg)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)
	defer func() {
		ctx, cancel := ctxTimeout(30 * time.Second)
		defer cancel()
		hs.Shutdown(ctx)
		if err := s.Close(ctx); err != nil {
			log.Printf("pimload: drain: %v", err)
		}
	}()
	return runRemote("http://"+ln.Addr().String(), model, mode, conc, reqs, rate, verify)
}

// runRemote drives an already-running server. The model's shape (and,
// for verification, its weight seed) comes from /healthz.
func runRemote(base, model, mode string, conc, reqs int, rate float64, verify bool) (*serve.Report, error) {
	spec, err := discoverModel(base, model)
	if err != nil {
		return nil, err
	}
	lc := serve.LoadConfig{
		BaseURL: base, Model: model, K: spec.K,
		Mode: mode, Concurrency: conc, Requests: reqs, RatePerSec: rate,
	}
	if verify {
		lc.Verify = &spec
	}
	return serve.RunLoad(lc)
}

func discoverModel(base, name string) (serve.ModelSpec, error) {
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		return serve.ModelSpec{}, err
	}
	defer resp.Body.Close()
	var health struct {
		Models []serve.ModelSpec `json:"models"`
	}
	if err := decodeJSON(resp.Body, &health); err != nil {
		return serve.ModelSpec{}, fmt.Errorf("parse %s/healthz: %w", base, err)
	}
	for _, m := range health.Models {
		if m.Name == name {
			return m, nil
		}
	}
	return serve.ModelSpec{}, fmt.Errorf("server does not serve model %q", name)
}

// printBench writes one go-bench-shaped line per run; iterations = OK
// responses, ns/op = wall time per completed request.
func printBench(tag string, r *serve.Report) {
	nsPerOp := 0.0
	if r.OK > 0 {
		nsPerOp = r.WallSeconds * 1e9 / float64(r.OK)
	}
	fmt.Printf("BenchmarkServe/%s/%s-1 %d %.0f ns/op "+
		"%.1f req/s %.1f sim_req/s %.0f p50_us %.0f p95_us %.0f p99_us "+
		"%.2f avg_batch %d max_queue %d rejected %d timeouts\n",
		tag, r.Model, r.OK, nsPerOp,
		r.ThroughputRPS, r.SimThroughputRPS, r.WallP50Us, r.WallP95Us, r.WallP99Us,
		r.AvgBatch, r.MaxQueueDepth, r.Rejected, r.Timeouts)
}

// Sequence-workload mode: pimload -seq drives the continuous-batching
// path with multi-step LSTM sequences instead of single GEMV requests.
// Lengths come from -seqlen-dist ("fixed:N" or "uniform:A:B"), outputs
// are verified step-by-step against the host-session oracle, and
// -compare runs the continuous-batching A/B: the same pool with the
// stepper admitting every slot vs pinned to one sequence at a time.
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"pimsim/internal/models"
	"pimsim/internal/serve"
)

type seqOpts struct {
	model   string
	dist    string
	seqs    int
	conc    int
	eos     int
	seed    int64
	verify  bool
	bench   bool
	compare bool
	minGain float64
}

// runSeqMode is the -seq entry point. With -compare it boots two
// in-process pools — continuous batching on (SeqAdmit = channels) and
// the sequential baseline (SeqAdmit = 1) — and prints the
// simulated-device step-throughput gain.
func runSeqMode(o seqOpts, base serve.Config, url string) error {
	cfg, ok := models.ServingConfigByName(o.model)
	if !ok {
		return fmt.Errorf("unknown sequence model %q (run pimserve -seq-models all and see GET /v1/models)", o.model)
	}
	dist, err := serve.ParseSeqLenDist(o.dist)
	if err != nil {
		return err
	}
	base.SeqModels = []models.Config{cfg}

	if o.compare {
		if url != "" {
			return fmt.Errorf("-compare boots its own servers; drop -url")
		}
		cont := base
		cont.SeqAdmit = 0 // every channel
		contRep, err := runSeqAgainst(cont, cfg, dist, o)
		if err != nil {
			return fmt.Errorf("continuous run: %w", err)
		}
		serial := base
		serial.SeqAdmit = 1
		serialRep, err := runSeqAgainst(serial, cfg, dist, o)
		if err != nil {
			return fmt.Errorf("sequential run: %w", err)
		}
		gain := 0.0
		if serialRep.SimStepPerSec > 0 {
			gain = contRep.SimStepPerSec / serialRep.SimStepPerSec
		}
		if o.bench {
			printSeqBench("continuous", contRep)
			printSeqBench("sequential", serialRep)
			fmt.Printf("BenchmarkServeSeq/gain-1 1 0 ns/op %.3f x_gain\n", gain)
		} else {
			fmt.Printf("continuous batching (admit %d):\n%s", base.Channels, contRep)
			fmt.Printf("sequential (admit 1):\n%s", serialRep)
			fmt.Printf("simulated-device step-throughput gain: %.2fx\n", gain)
		}
		if o.minGain > 0 && gain < o.minGain {
			return fmt.Errorf("continuous-batching gain %.2fx below required %.2fx", gain, o.minGain)
		}
		return nil
	}

	var rep *serve.SeqReport
	if url == "" {
		rep, err = runSeqAgainst(base, cfg, dist, o)
	} else {
		rep, err = runSeqLoad(url, cfg, dist, o)
	}
	if err != nil {
		return err
	}
	if o.bench {
		printSeqBench("closed", rep)
	} else {
		fmt.Print(rep)
	}
	if rep.Failures > 0 || rep.BadOutputs > 0 {
		return fmt.Errorf("%d failures, %d bad outputs", rep.Failures, rep.BadOutputs)
	}
	return nil
}

// runSeqAgainst boots an in-process server with cfg and drives it; the
// graceful drain is part of the run, exactly like the GEMV path.
func runSeqAgainst(cfg serve.Config, model models.Config, dist serve.SeqLenDist, o seqOpts) (*serve.SeqReport, error) {
	s, err := serve.New(cfg)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)
	defer func() {
		ctx, cancel := ctxTimeout(30 * time.Second)
		defer cancel()
		hs.Shutdown(ctx)
		if err := s.Close(ctx); err != nil {
			log.Printf("pimload: drain: %v", err)
		}
	}()
	return runSeqLoad("http://"+ln.Addr().String(), model, dist, o)
}

func runSeqLoad(base string, model models.Config, dist serve.SeqLenDist, o seqOpts) (*serve.SeqReport, error) {
	return serve.RunSeqLoad(serve.SeqLoadConfig{
		BaseURL: base,
		Model:   model,
		Seqs:    o.seqs, Concurrency: o.conc,
		LenDist: dist,
		EOS:     o.eos,
		Seed:    o.seed,
		Verify:  o.verify,
	})
}

// printSeqBench writes one go-bench-shaped line per run; iterations = OK
// sequences, ns/op = wall time per completed sequence.
func printSeqBench(tag string, r *serve.SeqReport) {
	nsPerOp := 0.0
	if r.OK > 0 {
		nsPerOp = r.WallSeconds * 1e9 / float64(r.OK)
	}
	fmt.Printf("BenchmarkServeSeq/%s/%s-1 %d %.0f ns/op "+
		"%.1f seq/s %.0f sim_steps/s "+
		"%.0f step_p50_us %.0f step_p95_us %.0f step_p99_us "+
		"%.0f seq_p50_us %.0f seq_p95_us %.0f seq_p99_us "+
		"%d steps %d migrations\n",
		tag, r.Model, r.OK, nsPerOp,
		r.SeqPerSec, r.SimStepPerSec,
		r.StepP50Us, r.StepP95Us, r.StepP99Us,
		r.SeqP50Us, r.SeqP95Us, r.SeqP99Us,
		r.Steps, r.Migrations)
}

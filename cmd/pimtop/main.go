// pimtop is the terminal ops view for pimserve: it polls GET
// /metrics.json and GET /debug/ops and renders one compact dashboard —
// windowed latency quantiles, admission and batch rates, shard health,
// queue occupancy, and (when the server runs with -slo) every
// objective's burn rates, error budget and state, the recent transition
// log, and the live per-model hedge-delay targets.
//
//	pimtop -url http://localhost:8080
//	pimtop -url http://localhost:8080 -once     # one snapshot, no TTY control
//
// -once prints a single frame and exits (nonzero if the server is
// unreachable or returns malformed JSON) — the mode CI smoke scripts
// assert on. Without -once the screen redraws every -interval using
// plain ANSI clear codes; q is not intercepted, ^C exits.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"pimsim/internal/metrics"
	"pimsim/internal/serve"
)

func main() {
	var (
		url      = flag.String("url", "http://localhost:8080", "pimserve base URL")
		interval = flag.Duration("interval", 2*time.Second, "poll/redraw cadence")
		once     = flag.Bool("once", false, "print one snapshot and exit (CI mode: no screen control)")
	)
	flag.Parse()

	client := &http.Client{Timeout: 10 * time.Second}
	for {
		frame, err := snapshot(client, strings.TrimRight(*url, "/"))
		if err != nil {
			fmt.Fprintf(os.Stderr, "pimtop: %v\n", err)
			os.Exit(1)
		}
		if *once {
			fmt.Print(frame)
			return
		}
		// Clear + home, then the frame: a flicker-free enough redraw
		// without taking a dependency on a terminal library.
		fmt.Print("\x1b[2J\x1b[H" + frame)
		time.Sleep(*interval)
	}
}

// snapshot fetches both endpoints and renders one frame.
func snapshot(client *http.Client, base string) (string, error) {
	var ops serve.OpsReport
	if err := getJSON(client, base+"/debug/ops", &ops); err != nil {
		return "", fmt.Errorf("%s/debug/ops: %w", base, err)
	}
	var snap metrics.Snapshot
	if err := getJSON(client, base+"/metrics.json", &snap); err != nil {
		return "", fmt.Errorf("%s/metrics.json: %w", base, err)
	}
	return render(base, &ops, &snap), nil
}

func getJSON(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// render formats one dashboard frame. Pure function of its inputs so the
// formatting is unit-testable without a server.
func render(base string, ops *serve.OpsReport, snap *metrics.Snapshot) string {
	var b strings.Builder
	fmt.Fprintf(&b, "pimtop — %s — %s\n\n", base, ops.Now.Format(time.RFC3339))

	w := ops.Window
	fmt.Fprintf(&b, "window %ds   admitted %d (%.1f/s)   requests %d\n",
		w.WidthMs/1000, w.Admitted, w.AdmitPerSec, w.Requests)
	fmt.Fprintf(&b, "wall p50 %s  p95 %s  p99 %s\n",
		fmtUs(w.WallP50Us), fmtUs(w.WallP95Us), fmtUs(w.WallP99Us))
	fmt.Fprintf(&b, "batches %d   mean %.2f   p99 %.1f   occupancy %.0f%%\n\n",
		w.Batches, w.MeanBatch, w.BatchP99, w.OccupancyPct)

	fmt.Fprintf(&b, "shards %d/%d healthy [%s]   queued %d\n",
		ops.ShardsHealthy, ops.Shards, strings.Join(ops.ShardStates, " "), ops.QueueDepth)
	for _, q := range ops.Queues {
		fmt.Fprintf(&b, "  queue %-24s %d/%d\n", q.Model, q.Depth, q.Bound)
	}

	if ops.SLO != nil {
		fmt.Fprintf(&b, "\nslo objectives\n")
		fmt.Fprintf(&b, "  %-10s %-16s %-5s %8s %8s %7s %10s %10s %12s\n",
			"TENANT", "MODEL", "STATE", "FAST", "SLOW", "BUDGET", "P99", "TARGET", "WINDOW")
		for _, s := range ops.SLO.Series {
			fmt.Fprintf(&b, "  %-10s %-16s %-5s %8.2f %8.2f %6.0f%% %10s %10s %6d/%d\n",
				s.Tenant, s.Model, s.State, s.FastBurn, s.SlowBurn, 100*s.BudgetRemaining,
				fmtUs(s.P99Us), fmtUs(float64(s.ObjectiveP99Us)), s.WindowBad, s.WindowTotal)
		}
		if len(ops.SLO.HedgeUs) > 0 {
			models := make([]string, 0, len(ops.SLO.HedgeUs))
			for m := range ops.SLO.HedgeUs {
				models = append(models, m)
			}
			sort.Strings(models)
			fmt.Fprintf(&b, "hedge targets:")
			for _, m := range models {
				fmt.Fprintf(&b, "  %s=%s", m, fmtUs(float64(ops.SLO.HedgeUs[m])))
			}
			fmt.Fprintln(&b)
		}
		if n := len(ops.SLO.Transitions); n > 0 {
			fmt.Fprintf(&b, "transitions (last %d of %d):\n", min(5, n), n)
			for _, tr := range ops.SLO.Transitions[max(0, n-5):] {
				fmt.Fprintf(&b, "  %s  %s/%s  %s→%s  fast %.1f slow %.1f\n",
					tr.At.Format("15:04:05"), tr.Tenant, tr.Model, tr.From, tr.To, tr.FastBurn, tr.SlowBurn)
			}
		}
	}

	fmt.Fprintf(&b, "\ntotals   served %d   shed %d   retries %d   hedges %d (wins %d)\n",
		snap.Counter("serve_served_total"), snap.Counter("serve_shed_total"),
		snap.Counter("serve_retries_total"), snap.Counter("serve_hedges_total"),
		snap.Counter("serve_hedge_wins_total"))
	return b.String()
}

// fmtUs renders a microsecond quantity at a human scale.
func fmtUs(us float64) string {
	switch {
	case us <= 0:
		return "-"
	case us < 1000:
		return fmt.Sprintf("%.0fµs", us)
	case us < 1e6:
		return fmt.Sprintf("%.1fms", us/1000)
	default:
		return fmt.Sprintf("%.2fs", us/1e6)
	}
}

package main

import (
	"strings"
	"testing"
	"time"

	"pimsim/internal/metrics"
	"pimsim/internal/serve"
	"pimsim/internal/slo"
)

// TestRenderFrame pins the dashboard's shape against a canned report:
// every section the smoke script greps for must be present.
func TestRenderFrame(t *testing.T) {
	ops := &serve.OpsReport{
		Now: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC),
		Window: serve.OpsWindow{
			WidthMs: 60000, Admitted: 120, AdmitPerSec: 2.0, Requests: 118,
			WallP50Us: 900, WallP95Us: 4200, WallP99Us: 9100,
			Batches: 40, MeanBatch: 2.95, BatchP99: 4, OccupancyPct: 74,
		},
		Shards: 2, ShardsHealthy: 2, ShardStates: []string{"healthy", "healthy"},
		QueueDepth: 3,
		Queues:     []serve.OpsQueue{{Model: "tiny", Depth: 3, Bound: 64}},
		SLO: &serve.OpsSLO{
			Series: []slo.SeriesStatus{{
				Tenant: "gold", Model: "tiny", State: "warn",
				FastBurn: 3.2, SlowBurn: 2.4, BudgetRemaining: 0.41,
				ObjectiveP99Us: 10000, P99Us: 9100, WindowTotal: 118, WindowBad: 6,
			}},
			Transitions: []slo.Transition{{
				At:     time.Date(2026, 8, 8, 11, 59, 0, 0, time.UTC),
				Tenant: "gold", Model: "tiny", From: "ok", To: "warn",
				FastBurn: 3.2, SlowBurn: 2.4,
			}},
			HedgeUs: map[string]int64{"tiny": 6400},
		},
	}
	snap := &metrics.Snapshot{Counters: map[string]int64{
		"serve_served_total":     118,
		"serve_shed_total":       2,
		"serve_hedges_total":     5,
		"serve_hedge_wins_total": 1,
	}}
	out := render("http://example:8080", ops, snap)
	for _, want := range []string{
		"window 60s",
		"admitted 120 (2.0/s)",
		"p99 9.1ms",
		"shards 2/2 healthy [healthy healthy]",
		"queue tiny",
		"gold",
		"warn",
		"hedge targets:  tiny=6.4ms",
		"ok→warn",
		"served 118",
		"shed 2",
		"hedges 5 (wins 1)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("frame missing %q:\n%s", want, out)
		}
	}
}

// TestRenderWithoutSLO: a plain server's frame omits the objective table.
func TestRenderWithoutSLO(t *testing.T) {
	out := render("http://example:8080", &serve.OpsReport{
		Shards: 1, ShardsHealthy: 1, ShardStates: []string{"healthy"},
	}, &metrics.Snapshot{})
	if strings.Contains(out, "slo objectives") {
		t.Fatalf("frame has an slo section without an engine:\n%s", out)
	}
	if !strings.Contains(out, "shards 1/1 healthy") {
		t.Fatalf("frame missing shard health:\n%s", out)
	}
}

func TestFmtUs(t *testing.T) {
	cases := map[float64]string{0: "-", 250: "250µs", 6400: "6.4ms", 2_500_000: "2.50s"}
	for in, want := range cases {
		if got := fmtUs(in); got != want {
			t.Errorf("fmtUs(%v) = %q, want %q", in, got, want)
		}
	}
}

// pimsim runs a single kernel on a simulated PIM-HBM system and prints
// timing, device activity and (in functional mode) a numeric check
// against the host reference.
//
//	pimsim -kernel gemv -m 4096 -k 8192            timing-only GEMV3
//	pimsim -kernel add -n 4194304                  timing-only ADD2
//	pimsim -kernel gemv -m 256 -k 512 -functional  verified small GEMV
//	pimsim -kernel gemv -variant srw ...           a Fig. 14 variant
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"pimsim/internal/blas"
	"pimsim/internal/energy"
	"pimsim/internal/engine"
	"pimsim/internal/fp16"
	"pimsim/internal/hbm"
	"pimsim/internal/obs"
	"pimsim/internal/prof"
	"pimsim/internal/runtime"
	"pimsim/internal/trace"
)

func main() {
	kernel := flag.String("kernel", "gemv", "gemv, add, mul, relu or bn")
	m := flag.Int("m", 1024, "GEMV output rows")
	k := flag.Int("k", 4096, "GEMV input columns")
	n := flag.Int("n", 1<<20, "elementwise length")
	devices := flag.Int("devices", 4, "PIM-HBM stacks")
	mhz := flag.Int("mhz", 1200, "memory clock in MHz")
	functional := flag.Bool("functional", false, "move real data and verify numerics")
	variantName := flag.String("variant", "base", "base, 2x, 2ba or srw")
	noFences := flag.Bool("nofences", false, "model an order-guaranteeing controller")
	seed := flag.Int64("seed", 1, "data seed (functional mode)")
	traceN := flag.Int("trace", 0, "print the last N DRAM commands of channel 0")
	timelineOut := flag.String("timeline", "", "write a Perfetto/Chrome trace-event timeline to this file")
	dumpCRF := flag.Bool("dump-crf", false, "disassemble unit 0's CRF after the kernel")
	metricsOut := flag.String("metrics-out", "", "write a metrics snapshot to this file (\"-\" for stdout)")
	metricsFormat := flag.String("metrics-format", "json", "metrics snapshot format: json or prom")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	engineName := flag.String("engine", "parallel", "channel execution engine: serial (sequential oracle) or parallel (worker per pseudo channel)")
	flag.Parse()

	// Fail a typo'd -engine here, before any device is built.
	if err := engine.Validate(*engineName); err != nil {
		fatal(err)
	}

	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fatal(err)
		}
	}()

	variant, ok := map[string]hbm.Variant{
		"base": hbm.VariantBase, "2x": hbm.Variant2X,
		"2ba": hbm.Variant2BA, "srw": hbm.VariantSRW,
	}[strings.ToLower(*variantName)]
	if !ok {
		fatal(fmt.Errorf("unknown variant %q", *variantName))
	}

	cfg := hbm.PIMHBMConfig(*mhz)
	cfg.Functional = *functional
	cfg.Variant = variant
	if variant == hbm.Variant2X {
		cfg.PIMUnits = 16
	}
	devs := make([]*hbm.Device, *devices)
	for i := range devs {
		d, err := hbm.NewDevice(cfg)
		if err != nil {
			fatal(err)
		}
		devs[i] = d
	}
	rt, err := runtime.New(devs)
	if err != nil {
		fatal(err)
	}
	if !*functional {
		rt.SimChannels = 1
	}
	eng, err := engine.New(*engineName, rt.NumChannels())
	if err != nil {
		fatal(err)
	}
	rt.UseEngine(eng)
	rt.SetGuaranteeOrder(*noFences)
	if *traceN > 0 {
		rt.Chans[0].Trace = trace.NewRecorder(*traceN)
	}
	var tl *obs.Timeline
	if *timelineOut != "" {
		tl = obs.FromHBM(cfg, rt.EffectiveChannels(), 0)
		rt.AttachTimeline(tl)
	}

	rng := rand.New(rand.NewSource(*seed))
	randVec := func(n int) fp16.Vector {
		v := fp16.NewVector(n)
		for i := range v {
			v[i] = fp16.FromFloat32(float32(rng.NormFloat64()))
		}
		return v
	}

	var ks blas.KernelStats
	var mismatch int
	switch strings.ToLower(*kernel) {
	case "gemv":
		var W, x fp16.Vector
		if *functional {
			W, x = randVec(*m**k), randVec(*k)
		}
		var y fp16.Vector
		y, ks, err = blas.PimGemv(rt, W, *m, *k, x)
		if err == nil && *functional {
			want := blas.RefGemvPIMOrder(W, *m, *k, x, 8)
			for i := range want {
				if y[i] != want[i] {
					mismatch++
				}
			}
		}
		fmt.Printf("kernel: GEMV %dx%d on %s\n", *m, *k, variant)
	case "add", "mul":
		var a, b fp16.Vector
		if *functional {
			a, b = randVec(*n), randVec(*n)
		}
		var c, want fp16.Vector
		if *kernel == "add" {
			c, ks, err = blas.PimAdd(rt, a, b, *n)
			if *functional {
				want = blas.RefAdd(a, b)
			}
		} else {
			c, ks, err = blas.PimMul(rt, a, b, *n)
			if *functional {
				want = blas.RefMul(a, b)
			}
		}
		if err == nil && *functional {
			for i := range want {
				if c[i] != want[i] {
					mismatch++
				}
			}
		}
		fmt.Printf("kernel: %s of %d elements on %s\n", strings.ToUpper(*kernel), *n, variant)
	case "relu":
		var x fp16.Vector
		if *functional {
			x = randVec(*n)
		}
		var y fp16.Vector
		y, ks, err = blas.PimReLU(rt, x, *n)
		if err == nil && *functional {
			want := blas.RefReLU(x)
			for i := range want {
				if y[i] != want[i] {
					mismatch++
				}
			}
		}
		fmt.Printf("kernel: RELU of %d elements on %s\n", *n, variant)
	case "bn":
		var x fp16.Vector
		if *functional {
			x = randVec(*n)
		}
		gamma, beta := fp16.FromFloat32(1.25), fp16.FromFloat32(-0.5)
		var y fp16.Vector
		y, ks, err = blas.PimBN(rt, x, *n, gamma, beta)
		if err == nil && *functional {
			want := blas.RefBN(x, gamma, beta)
			for i := range want {
				if y[i] != want[i] {
					mismatch++
				}
			}
		}
		fmt.Printf("kernel: BN of %d elements on %s\n", *n, variant)
	default:
		fatal(fmt.Errorf("unknown kernel %q", *kernel))
	}
	if err != nil {
		fatal(err)
	}

	ns := rt.Cfg.Timing.CyclesToNs(ks.Cycles)
	fmt.Printf("cycles:   %d (%.2f us at %d MHz)\n", ks.Cycles, ns/1000, *mhz)
	fmt.Printf("triggers: %d   fences: %d\n", ks.Triggers, ks.Fences)

	var st hbm.Stats
	for _, d := range devs {
		s := d.Stats()
		st.Add(s)
	}
	fmt.Printf("device:   %d PIM instructions (%d arithmetic), %d bank reads, %d bank writes\n",
		st.PIMInstr, st.PIMArith, st.BankReads, st.BankWrites)
	b := energy.Compute(st, ks.Cycles, rt.Cfg, energy.DefaultParams(), rt.NumChannels())
	fmt.Printf("energy:   %.3f mJ device (%.1f%% background)\n",
		b.Total()*1e-9, 100*b.Background/b.Total())
	if *functional {
		if mismatch == 0 {
			fmt.Println("verify:   PASS (bit-exact against the host reference)")
		} else {
			fmt.Printf("verify:   FAIL (%d mismatching elements)\n", mismatch)
			os.Exit(1)
		}
	}
	if *dumpCRF {
		prog, err := rt.Execs[0].Program(0)
		if err != nil {
			fatal(err)
		}
		fmt.Println("\nunit 0 CRF image:")
		for i, in := range prog {
			fmt.Printf("  CRF[%2d]  %s\n", i, in)
		}
	}
	if rec := rt.Chans[0].Trace; rec != nil {
		fmt.Printf("\nlast %d of %d commands on channel 0 (cycle ch cmd bg bank row col):\n",
			len(rec.Events()), rec.Total())
		if err := rec.Dump(os.Stdout); err != nil {
			fatal(err)
		}
	}
	if *metricsOut != "" {
		if err := writeMetrics(rt, *metricsOut, *metricsFormat); err != nil {
			fatal(err)
		}
	}
	if tl != nil {
		if err := writeTimeline(tl, *timelineOut); err != nil {
			fatal(err)
		}
		fmt.Printf("timeline: %d events -> %s (open in https://ui.perfetto.dev)\n",
			tl.Events(), *timelineOut)
		if d := tl.Dropped(); d > 0 {
			fmt.Fprintf(os.Stderr, "pimsim: timeline dropped %d events (per-channel buffer full)\n", d)
		}
	}
}

// writeTimeline exports the recorded command timeline as Chrome
// trace-event JSON.
func writeTimeline(tl *obs.Timeline, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tl.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeMetrics dumps the runtime's metrics snapshot to path ("-" for
// stdout) in JSON or Prometheus text format.
func writeMetrics(rt *runtime.Runtime, path, format string) error {
	snap := rt.Metrics.Snapshot()
	w := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch strings.ToLower(format) {
	case "json":
		return snap.WriteJSON(w)
	case "prom", "prometheus":
		return snap.WritePrometheus(w)
	}
	return fmt.Errorf("unknown metrics format %q (want json or prom)", format)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pimsim:", err)
	os.Exit(1)
}

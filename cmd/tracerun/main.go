// tracerun replays a memory trace against the device model — the
// DRAMSim2-style workflow. Two modes:
//
//	tracerun -mode txn trace.txt   transaction trace: lines "R <addr>" or
//	                               "W <addr>" scheduled by the FR-FCFS
//	                               controller (addresses decimal or 0x hex)
//	tracerun -mode cmd trace.txt   command trace in the internal/trace
//	                               format, re-timed at earliest legality
//
// Both print cycles, bandwidth and the device activity counters.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"pimsim/internal/hbm"
	"pimsim/internal/memctrl"
	"pimsim/internal/metrics"
	"pimsim/internal/trace"
)

func main() {
	mode := flag.String("mode", "txn", "txn or cmd")
	mhz := flag.Int("mhz", 1200, "memory clock in MHz")
	pimDev := flag.Bool("pim", false, "use the PIM-HBM geometry instead of plain HBM2")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracerun [-mode txn|cmd] <trace-file>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()

	cfg := hbm.HBM2Config(*mhz)
	if *pimDev {
		cfg = hbm.PIMHBMConfig(*mhz)
	}
	cfg.Functional = false
	dev, err := hbm.NewDevice(cfg)
	if err != nil {
		fatal(err)
	}

	switch *mode {
	case "txn":
		runTxn(f, dev, cfg)
	case "cmd":
		runCmd(f, dev, cfg)
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
}

func runTxn(f *os.File, dev *hbm.Device, cfg hbm.Config) {
	m := memctrl.NewAddrMap(dev.NumPCH(), cfg.BankGroups, cfg.BanksPerGroup,
		cfg.Rows, cfg.ColumnsPerRow(), cfg.AccessBytes)
	chans := make([]*memctrl.Channel, dev.NumPCH())
	scheds := make([]*memctrl.Scheduler, dev.NumPCH())
	reg := metrics.New(dev.NumPCH())
	for i := range chans {
		chans[i] = memctrl.NewChannel(dev.PCH(i), cfg)
		chans[i].ChannelID = i
		chans[i].UseMetrics(reg, i)
		scheds[i] = memctrl.NewScheduler(chans[i], cfg)
		scheds[i].AutoRelease = true // trace replay discards transaction results
	}

	var reads, writes int64
	sc := bufio.NewScanner(f)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			fatal(fmt.Errorf("line %d: want \"R|W <addr>\", got %q", lineno, line))
		}
		addr, err := strconv.ParseUint(strings.TrimPrefix(fields[1], "0x"), pickBase(fields[1]), 64)
		if err != nil {
			fatal(fmt.Errorf("line %d: %v", lineno, err))
		}
		loc, err := m.Decode(addr &^ uint64(cfg.AccessBytes-1))
		if err != nil {
			fatal(fmt.Errorf("line %d: %v", lineno, err))
		}
		write := strings.EqualFold(fields[0], "W")
		if write {
			writes++
		} else {
			reads++
		}
		scheds[loc.Channel].Enqueue(write, loc, nil)
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}

	var end int64
	for i, s := range scheds {
		done, err := s.Drain()
		if err != nil {
			fatal(fmt.Errorf("channel %d: %w", i, err))
		}
		if done > end {
			end = done
		}
	}
	bytes := float64(reads+writes) * float64(cfg.AccessBytes)
	ns := cfg.Timing.CyclesToNs(end)
	fmt.Printf("transactions: %d reads, %d writes\n", reads, writes)
	fmt.Printf("finish: cycle %d (%.2f us)\n", end, ns/1000)
	fmt.Printf("bandwidth: %.2f GB/s\n", bytes/ns)
	var hits, misses, reorders, ahead int64
	for _, s := range scheds {
		hits += s.RowHits()
		misses += s.RowMisses() + s.RowOpens()
		reorders += s.Reordered()
		ahead += s.AheadOpens()
	}
	fmt.Printf("row buffer: %d hits, %d misses/opens (%.1f%% hit), %d reordered, %d speculative opens\n",
		hits, misses, 100*float64(hits)/float64(hits+misses), reorders, ahead)
	printStats(dev)
}

func runCmd(f *os.File, dev *hbm.Device, cfg hbm.Config) {
	events, err := trace.Parse(f)
	if err != nil {
		fatal(err)
	}
	// Validate addresses against the device geometry up front: a bad trace
	// fails with its line index, not deep inside the channel model.
	if err := trace.Validate(events, cfg, dev.NumPCH()); err != nil {
		fatal(err)
	}
	now := make([]int64, dev.NumPCH())
	for i, e := range events {
		p := dev.PCH(e.Channel)
		cmd := e.Command()
		if cmd.Kind == hbm.CmdWR {
			cmd.Data = nil
		}
		at, err := p.EarliestIssue(cmd, now[e.Channel])
		if err != nil {
			fatal(fmt.Errorf("event %d (%s): %v", i, cmd, err))
		}
		if _, err := p.Issue(cmd, at); err != nil {
			fatal(fmt.Errorf("event %d (%s): %v", i, cmd, err))
		}
		now[e.Channel] = at + 1
	}
	var end int64
	for _, n := range now {
		if n > end {
			end = n
		}
	}
	fmt.Printf("replayed %d commands; finish: cycle %d (%.2f us)\n",
		len(events), end, cfg.Timing.CyclesToNs(end)/1000)
	printStats(dev)
}

func printStats(dev *hbm.Device) {
	st := dev.Stats()
	fmt.Printf("device: ACT %d, RD %d, WR %d, PRE %d, REF %d, off-chip %d bytes\n",
		st.ACT, st.RD, st.WR, st.PRE, st.REF, st.OffChipBytes)
}

func pickBase(s string) int {
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		return 16
	}
	return 10
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracerun:", err)
	os.Exit(1)
}

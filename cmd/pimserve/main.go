// pimserve runs the online inference service over a pool of simulated
// PIM-HBM devices. Models are preloaded into the banks at boot; requests
// flow through a bounded admission queue, a per-model dynamic batcher
// (flush on batch size or max wait) and workers that lease shards.
//
//	pimserve -addr :8080 -shards 2 -channels 4
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/infer \
//	    -d '{"model":"micro-256x256","input":[0.5, ...]}'
//
// Fault drills (docs/FAULTS.md) run the same binary against a lying
// memory: -fault-profile injects seeded bit flips, latency spikes and
// shard outages, -ecc turns the on-die SEC-DED engine on without any
// injection, and the retry/eviction knobs tune how the serving layer
// rides the faults out:
//
//	pimserve -fault-profile chaos-mild -fault-seed 42
//
// SIGINT/SIGTERM triggers graceful shutdown: the listener stops, then the
// pipeline drains — every accepted request still gets its response.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pimsim/internal/fault"
	"pimsim/internal/serve"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address (host:port; :0 picks a free port)")
		shards     = flag.Int("shards", 2, "independent simulated PIM devices")
		channels   = flag.Int("channels", 4, "pseudo channels per shard (= max batch)")
		mhz        = flag.Int("mhz", 1200, "memory clock in MHz")
		maxBatch   = flag.Int("max-batch", 0, "batch bound (0 = channel count)")
		batchWait  = flag.Duration("batch-wait", 2*time.Millisecond, "dynamic batcher flush timeout")
		queueDepth = flag.Int("queue-depth", 64, "per-model admission queue depth")
		timeout    = flag.Duration("timeout", 2*time.Second, "per-request deadline (queue + execute)")
		drainWait  = flag.Duration("drain-wait", 30*time.Second, "graceful shutdown budget")

		ecc        = flag.Bool("ecc", false, "enable the on-die SEC-DED engine (implied by a corrupting fault profile)")
		profile    = flag.String("fault-profile", "", "fault injection profile: none, chaos-mild, chaos-hard")
		faultSeed  = flag.Int64("fault-seed", 42, "seed for the deterministic fault injector")
		maxRetries = flag.Int("max-retries", 3, "re-dispatch attempts for a batch hit by a device fault")
		evictAfter = flag.Int("evict-after", 2, "consecutive failures before a shard is evicted")
		probeEvery = flag.Duration("probe-interval", 20*time.Millisecond, "probation probe cadence for evicted shards")
	)
	flag.Parse()

	cfg := serve.Config{
		Shards:         *shards,
		Channels:       *channels,
		MHz:            *mhz,
		MaxBatch:       *maxBatch,
		BatchWait:      *batchWait,
		QueueDepth:     *queueDepth,
		RequestTimeout: *timeout,
		ECC:            *ecc,
		MaxRetries:     *maxRetries,
		EvictAfter:     *evictAfter,
		ProbeInterval:  *probeEvery,
	}
	if *profile != "" {
		fc, err := fault.Profile(*profile, *faultSeed)
		if err != nil {
			log.Fatalf("pimserve: %v", err)
		}
		cfg.Fault = &fc
		log.Printf("pimserve: fault profile %s (seed %d)", *profile, *faultSeed)
	}
	boot := time.Now()
	s, err := serve.New(cfg)
	if err != nil {
		log.Fatalf("pimserve: %v", err)
	}
	log.Printf("pimserve: %d shards x %d channels at %d MHz ready in %v",
		*shards, *channels, *mhz, time.Since(boot).Round(time.Millisecond))
	for _, m := range s.Models() {
		log.Printf("pimserve: model %s loaded (%dx%d)", m.Name, m.M, m.K)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("pimserve: %v", err)
	}
	// The resolved address on stdout lets scripts use -addr :0.
	fmt.Printf("listening on %s\n", ln.Addr())

	hs := &http.Server{Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case got := <-sig:
		log.Printf("pimserve: %v: draining", got)
	case err := <-errCh:
		log.Fatalf("pimserve: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	// Stop the listener first (in-flight handlers finish), then drain the
	// pipeline so every accepted request is answered.
	if err := hs.Shutdown(ctx); err != nil {
		log.Printf("pimserve: http shutdown: %v", err)
	}
	if err := s.Close(ctx); err != nil {
		log.Fatalf("pimserve: %v", err)
	}
	log.Printf("pimserve: drained cleanly")
}

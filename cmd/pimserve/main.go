// pimserve runs the online inference service over a pool of simulated
// PIM-HBM devices. Models are preloaded into the banks at boot; requests
// flow through a bounded admission queue, a per-model dynamic batcher
// (flush on batch size or max wait) and workers that lease shards.
//
//	pimserve -addr :8080 -shards 2 -channels 4
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/infer \
//	    -d '{"model":"micro-256x256","input":[0.5, ...]}'
//
// Fault drills (docs/FAULTS.md) run the same binary against a lying
// memory: -fault-profile injects seeded bit flips, latency spikes and
// shard outages, -ecc turns the on-die SEC-DED engine on without any
// injection, and the retry/eviction knobs tune how the serving layer
// rides the faults out:
//
//	pimserve -fault-profile chaos-mild -fault-seed 42
//
// Multi-tenant QoS (docs/SERVING.md): -tenant name=weight[:priority]
// (repeatable) gives each tenant its own weighted-fair lane in every
// model's admission queue, with graduated shedding by priority;
// requests pick a lane with the `tenant` body field or X-Tenant header.
// -hedge-delay duplicates straggling batches onto a spare shard and
// takes the first result, trimming the p99.9 tail:
//
//	pimserve -tenant gold=4:10 -tenant free=1 -hedge-delay 5ms
//
// Observability (docs/OBSERVABILITY.md): every request carries an ID
// (returned in X-Request-ID) and produces one JSON access-log line on
// stderr. -trace arms the flight recorder — request span trees are
// served live at GET /debug/trace, dumped to -trace-dir on shutdown
// (spans.json) and whenever a request exceeds -slow-request
// (slow-<id>.json). -pprof-addr exposes net/http/pprof on a separate
// listener, off by default.
//
// SIGINT/SIGTERM triggers graceful shutdown: the listener stops, then the
// pipeline drains — every accepted request still gets its response.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"pimsim/internal/engine"
	"pimsim/internal/fault"
	"pimsim/internal/models"
	"pimsim/internal/obs"
	"pimsim/internal/serve"
	"pimsim/internal/slo"
)

// tenantFlags collects repeatable -tenant name=weight[:priority] flags
// into the serving layer's QoS lane specs (docs/SERVING.md): weight is
// the WFQ share, priority orders graduated shedding (higher sheds
// later). Unattributed traffic always gets a "default" lane.
type tenantFlags []serve.TenantSpec

func (t *tenantFlags) String() string {
	parts := make([]string, 0, len(*t))
	for _, sp := range *t {
		parts = append(parts, fmt.Sprintf("%s=%d:%d", sp.Name, sp.Weight, sp.Priority))
	}
	return strings.Join(parts, ",")
}

func (t *tenantFlags) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok || name == "" {
		return fmt.Errorf("want name=weight[:priority], got %q", s)
	}
	wStr, pStr, hasP := strings.Cut(val, ":")
	w, err := strconv.Atoi(wStr)
	if err != nil || w <= 0 {
		return fmt.Errorf("tenant %s: weight must be a positive integer, got %q", name, wStr)
	}
	p := 0
	if hasP {
		if p, err = strconv.Atoi(pStr); err != nil {
			return fmt.Errorf("tenant %s: priority must be an integer, got %q", name, pStr)
		}
	}
	*t = append(*t, serve.TenantSpec{Name: name, Weight: w, Priority: p})
	return nil
}

// sloFlags collects repeatable -slo objective specs
// ("tenant/model:p99=<dur>,avail=<pct>"; see docs/SLO.md).
type sloFlags []slo.Objective

func (s *sloFlags) String() string {
	parts := make([]string, 0, len(*s))
	for _, o := range *s {
		parts = append(parts, fmt.Sprintf("%s/%s:p99=%s,avail=%g", o.Tenant, o.Model, o.LatencyP99, o.Availability))
	}
	return strings.Join(parts, " ")
}

func (s *sloFlags) Set(spec string) error {
	o, err := slo.ParseObjective(spec)
	if err != nil {
		return err
	}
	*s = append(*s, o)
	return nil
}

// batchWaitOverrides collects repeatable -model-batch-wait name=duration
// flags into per-model flush deadlines.
type batchWaitOverrides map[string]time.Duration

func (o batchWaitOverrides) String() string {
	parts := make([]string, 0, len(o))
	for k, v := range o {
		parts = append(parts, k+"="+v.String())
	}
	return strings.Join(parts, ",")
}

func (o batchWaitOverrides) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok || name == "" {
		return fmt.Errorf("want model=duration, got %q", s)
	}
	d, err := time.ParseDuration(val)
	if err != nil {
		return err
	}
	if d <= 0 {
		return fmt.Errorf("batch wait must be positive, got %v", d)
	}
	o[name] = d
	return nil
}

// resolveSeqModels turns the -seq-models flag value into model configs:
// "all" is every serving-scale stack, otherwise a comma-separated subset
// of their names.
func resolveSeqModels(spec string) ([]models.Config, error) {
	if spec == "" {
		return nil, nil
	}
	if spec == "all" {
		return models.ServingConfigs(), nil
	}
	var out []models.Config
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		cfg, ok := models.ServingConfigByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown sequence model %q (have %s)", name, seqModelNames())
		}
		out = append(out, cfg)
	}
	return out, nil
}

func seqModelNames() string {
	var names []string
	for _, c := range models.ServingConfigs() {
		names = append(names, c.Name)
	}
	return strings.Join(names, ", ")
}

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address (host:port; :0 picks a free port)")
		shards     = flag.Int("shards", 2, "independent simulated PIM devices")
		channels   = flag.Int("channels", 4, "pseudo channels per shard (= max batch)")
		mhz        = flag.Int("mhz", 1200, "memory clock in MHz")
		engineName = flag.String("engine", "parallel", "channel execution engine per shard: serial or parallel")
		maxBatch   = flag.Int("max-batch", 0, "batch bound (0 = channel count)")
		batchWait  = flag.Duration("batch-wait", 2*time.Millisecond, "dynamic batcher flush timeout")
		queueDepth = flag.Int("queue-depth", 64, "per-model admission queue depth")
		timeout    = flag.Duration("timeout", 2*time.Second, "per-request deadline (queue + execute)")
		hedgeDelay = flag.Duration("hedge-delay", 0, "duplicate a straggling batch onto a spare shard after this delay; first result wins (0 = off)")
		drainWait  = flag.Duration("drain-wait", 30*time.Second, "graceful shutdown budget")

		ecc        = flag.Bool("ecc", false, "enable the on-die SEC-DED engine (implied by a corrupting fault profile)")
		profile    = flag.String("fault-profile", "", "fault injection profile: none, chaos-mild, chaos-hard")
		faultSeed  = flag.Int64("fault-seed", 42, "seed for the deterministic fault injector")
		maxRetries = flag.Int("max-retries", 3, "re-dispatch attempts for a batch hit by a device fault")
		evictAfter = flag.Int("evict-after", 2, "consecutive failures before a shard is evicted")
		probeEvery = flag.Duration("probe-interval", 20*time.Millisecond, "probation probe cadence for evicted shards")

		seqModels = flag.String("seq-models", "", "sequence models served with continuous batching: comma-separated names or \"all\" (see GET /v1/models)")
		seqAdmit  = flag.Int("seq-admit", 0, "max sequences a stepper runs concurrently (0 = every channel; 1 = sequential baseline)")
		maxSeqLen = flag.Int("max-seqlen", 0, "frames-per-sequence cap on /v1/infer (0 = default 256)")

		traceOn   = flag.Bool("trace", false, "arm the request flight recorder (GET /debug/trace)")
		traceDir  = flag.String("trace-dir", "", "directory for trace dumps (spans.json on shutdown, slow-<id>.json); implies -trace")
		traceBuf  = flag.Int("trace-buf", 8192, "flight recorder capacity in spans (newest kept)")
		slowReq   = flag.Duration("slow-request", 0, "dump the span tree of any request slower than this (0 = off)")
		pprofAddr = flag.String("pprof-addr", "", "serve net/http/pprof on this separate listener (empty = off)")
	)
	var (
		sloHedge    = flag.Bool("slo-hedge", false, "close the SLO control loop: per-model hedge delays track the observed windowed p99 (seeded from -hedge-delay); requires at least one -slo")
		sloHedgeMin = flag.Duration("slo-hedge-min", time.Millisecond, "hedge-controller floor")
		sloHedgeMax = flag.Duration("slo-hedge-max", 250*time.Millisecond, "hedge-controller ceiling")
	)
	waits := batchWaitOverrides{}
	flag.Var(waits, "model-batch-wait", "per-model batcher flush deadline override, name=duration (repeatable)")
	var tenants tenantFlags
	flag.Var(&tenants, "tenant", "QoS tenant lane, name=weight[:priority] (repeatable); requests pick a lane via the tenant body field or X-Tenant header")
	var sloObjs sloFlags
	flag.Var(&sloObjs, "slo", "SLO objective, [tenant[/model]:]p99=<dur>[,avail=<pct>] (repeatable); arms burn-rate evaluation on /debug/ops and /debug/slow")
	flag.Parse()

	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))

	// Fail a typo'd -engine here, before any shard is built.
	if err := engine.Validate(*engineName); err != nil {
		fatal(logger, err)
	}

	seqCfgs, err := resolveSeqModels(*seqModels)
	if err != nil {
		fatal(logger, err)
	}

	cfg := serve.Config{
		Shards:         *shards,
		Channels:       *channels,
		MHz:            *mhz,
		Engine:         *engineName,
		MaxBatch:       *maxBatch,
		BatchWait:      *batchWait,
		QueueDepth:     *queueDepth,
		RequestTimeout: *timeout,
		Tenants:        tenants,
		HedgeDelay:     *hedgeDelay,
		SeqModels:      seqCfgs,
		SeqAdmit:       *seqAdmit,
		MaxSeqLen:      *maxSeqLen,
		ECC:            *ecc,
		MaxRetries:     *maxRetries,
		EvictAfter:     *evictAfter,
		ProbeInterval:  *probeEvery,
		Logger:         logger,
	}
	if len(waits) > 0 {
		// Per-model flush deadlines patch the default GEMV model set; an
		// override naming no served model is a boot error, not a silent noop.
		cfg.Models = serve.DefaultModels()
		patched := map[string]bool{}
		for i := range cfg.Models {
			if d, ok := waits[cfg.Models[i].Name]; ok {
				cfg.Models[i].BatchWait = d
				patched[cfg.Models[i].Name] = true
			}
		}
		for name := range waits {
			if !patched[name] {
				fatal(logger, fmt.Errorf("-model-batch-wait: no served model %q", name))
			}
		}
	}
	if *sloHedge && len(sloObjs) == 0 {
		fatal(logger, fmt.Errorf("-slo-hedge needs at least one -slo objective"))
	}
	if len(sloObjs) > 0 {
		cfg.SLO = &slo.Config{Objectives: sloObjs}
		if *sloHedge {
			cfg.SLO.Hedge = &slo.HedgeConfig{Min: *sloHedgeMin, Max: *sloHedgeMax}
		}
	}
	if *profile != "" {
		fc, err := fault.Profile(*profile, *faultSeed)
		if err != nil {
			fatal(logger, err)
		}
		cfg.Fault = &fc
		logger.Info("fault profile armed", "profile", *profile, "seed", *faultSeed)
	}

	var tracer *obs.Tracer
	if *traceOn || *traceDir != "" {
		if *traceDir != "" {
			if err := os.MkdirAll(*traceDir, 0o755); err != nil {
				fatal(logger, err)
			}
		}
		tracer = obs.NewTracer(*traceBuf)
		cfg.Tracer = tracer
		if *slowReq > 0 {
			dir := *traceDir
			threshold := *slowReq
			tracer.SetSlow(threshold, func(tree []obs.Span) {
				if len(tree) == 0 {
					return
				}
				root := tree[0]
				logger.Warn("slow request",
					"req", root.Req, "dur_us", root.Duration().Microseconds(),
					"threshold_us", threshold.Microseconds(), "spans", len(tree))
				if dir == "" {
					return
				}
				path := filepath.Join(dir, "slow-"+root.Req+".json")
				f, err := os.Create(path)
				if err != nil {
					logger.Warn("slow-request dump failed", "err", err.Error())
					return
				}
				if err := obs.WriteSpans(f, tree); err != nil {
					logger.Warn("slow-request dump failed", "err", err.Error())
				}
				f.Close()
			})
		}
		logger.Info("tracing armed", "buf", *traceBuf, "dir", *traceDir, "slow_request", slowReq.String())
	}

	if *pprofAddr != "" {
		// pprof rides http.DefaultServeMux (the blank net/http/pprof
		// import), which the service mux below never exposes — profiling
		// stays on its own listener, off the serving port.
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fatal(logger, err)
		}
		logger.Info("pprof listening", "addr", pln.Addr().String())
		go func() {
			if err := http.Serve(pln, nil); err != nil {
				logger.Warn("pprof listener exited", "err", err.Error())
			}
		}()
	}

	boot := time.Now()
	s, err := serve.New(cfg)
	if err != nil {
		fatal(logger, err)
	}
	logger.Info("pool ready",
		"shards", *shards, "channels", *channels, "mhz", *mhz,
		"boot_ms", time.Since(boot).Milliseconds())
	for _, m := range s.Models() {
		logger.Info("model loaded", "model", m.Name, "m", m.M, "k", m.K)
	}
	for _, sp := range tenants {
		logger.Info("tenant lane", "tenant", sp.Name, "weight", sp.Weight, "priority", sp.Priority)
	}
	if *hedgeDelay > 0 {
		logger.Info("hedged dispatch armed", "delay", hedgeDelay.String())
	}
	for _, o := range sloObjs {
		logger.Info("slo objective armed",
			"tenant", o.Tenant, "model", o.Model,
			"p99", o.LatencyP99.String(), "avail", o.Availability)
	}
	if *sloHedge {
		logger.Info("slo hedge controller armed",
			"min", sloHedgeMin.String(), "max", sloHedgeMax.String(), "seed", hedgeDelay.String())
	}
	for _, c := range seqCfgs {
		logger.Info("sequence model resident", "model", c.Name,
			"layers", len(c.Hidden), "weight_bytes", c.WeightBytes())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(logger, err)
	}
	// The resolved address on stdout lets scripts use -addr :0.
	fmt.Printf("listening on %s\n", ln.Addr())

	hs := &http.Server{Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case got := <-sig:
		logger.Info("draining", "signal", got.String())
	case err := <-errCh:
		fatal(logger, err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	// Stop the listener first (in-flight handlers finish), then drain the
	// pipeline so every accepted request is answered.
	if err := hs.Shutdown(ctx); err != nil {
		logger.Warn("http shutdown", "err", err.Error())
	}
	if err := s.Close(ctx); err != nil {
		fatal(logger, err)
	}
	if tracer != nil && *traceDir != "" {
		path := filepath.Join(*traceDir, "spans.json")
		if err := dumpSpans(tracer, path); err != nil {
			logger.Warn("span dump failed", "err", err.Error())
		} else {
			logger.Info("spans dumped", "path", path, "total", tracer.Total())
		}
	}
	logger.Info("drained cleanly")
}

// dumpSpans writes the flight recorder's contents as Chrome trace-event
// JSON (the same format GET /debug/trace serves).
func dumpSpans(t *obs.Tracer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteSpans(f, t.Snapshot()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(logger *slog.Logger, err error) {
	logger.Error("fatal", "err", err.Error())
	os.Exit(1)
}

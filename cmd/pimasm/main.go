// pimasm assembles and disassembles PIM microkernels.
//
//	pimasm < kernel.s            assemble to CRF words (hex)
//	pimasm -d 0xa2118000 ...     disassemble words
//	pimasm -example              print the paper's GEMV microkernel
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"pimsim/internal/isa"
)

func main() {
	dis := flag.Bool("d", false, "disassemble hex words given as arguments")
	example := flag.Bool("example", false, "print the GEMV microkernel")
	flag.Parse()

	switch {
	case *example:
		prog, err := isa.Assemble(`
			MOV(AAM) GRF_A, EVEN_BANK          ; WR triggers push x splats
			JUMP -1, 7
			MAC(AAM) GRF_B, GRF_A, EVEN_BANK   ; RD triggers accumulate
			JUMP -1, 7
			JUMP -4, 127                       ; outer pass loop
			EXIT
		`)
		if err != nil {
			fatal(err)
		}
		printProgram(prog)

	case *dis:
		words := make([]uint32, 0, flag.NArg())
		for _, arg := range flag.Args() {
			w, err := strconv.ParseUint(strings.TrimPrefix(arg, "0x"), 16, 32)
			if err != nil {
				fatal(fmt.Errorf("bad word %q: %w", arg, err))
			}
			words = append(words, uint32(w))
		}
		prog, err := isa.DecodeProgram(words)
		if err != nil {
			fatal(err)
		}
		printProgram(prog)

	default:
		src, err := readAll(os.Stdin)
		if err != nil {
			fatal(err)
		}
		prog, err := isa.Assemble(src)
		if err != nil {
			fatal(err)
		}
		printProgram(prog)
	}
}

func printProgram(prog []isa.Instruction) {
	for i, in := range prog {
		w, err := isa.Encode(in)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("CRF[%2d]  %#08x  %s\n", i, w, in)
	}
}

func readAll(f *os.File) (string, error) {
	var sb strings.Builder
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteByte('\n')
	}
	return sb.String(), sc.Err()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pimasm:", err)
	os.Exit(1)
}

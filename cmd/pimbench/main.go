// pimbench regenerates every table and figure of the paper's evaluation:
//
//	pimbench -exp table1      MAC-unit area/energy model vs Table I
//	pimbench -exp table2      ISA operand combinations vs Table II
//	pimbench -exp table3      instruction encodings (Table III)
//	pimbench -exp table4      PIM execution unit spec (Table IV)
//	pimbench -exp table5      PIM-HBM device spec (Table V)
//	pimbench -exp table6      microbenchmark set (Table VI)
//	pimbench -exp fig10       microbenchmarks + applications, batch 1/2/4
//	pimbench -exp fig11       back-to-back RD power breakdown
//	pimbench -exp fig12       three-system power & energy
//	pimbench -exp fig13       DS2 system power over time
//	pimbench -exp fig14       design space exploration
//	pimbench -exp fences      in-order controller study (Section VII-B)
//	pimbench -exp encoder     GNMT encoder-only study (Section VII-B)
//	pimbench -exp ablation    design-choice sweeps (fences, refresh, mapping...)
//	pimbench -exp drams       the same stack on GDDR6 and LPDDR5 (Section III)
//	pimbench -exp collab      collaborative host+PIM GEMV (Section VIII)
//	pimbench -exp corners     1.0 vs 1.2 GHz operating points (Tables IV/V)
//	pimbench -exp metrics     per-kernel runtime phase breakdown (metrics layer)
//	pimbench -exp all         everything above
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pimsim/internal/dse"
	"pimsim/internal/hbm"
	"pimsim/internal/isa"
	"pimsim/internal/macmodel"
	"pimsim/internal/models"
	"pimsim/internal/pim"
	"pimsim/internal/prof"
	"pimsim/internal/sim"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (table1..6, fig10..14, fences, encoder, all)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()

	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pimbench:", err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "pimbench:", err)
			os.Exit(1)
		}
	}()

	runners := []struct {
		name string
		fn   func() error
	}{
		{"table1", table1}, {"table2", table2}, {"table3", table3},
		{"table4", table4}, {"table5", table5}, {"table6", table6},
		{"fig10", fig10}, {"fig11", fig11}, {"fig12", fig12},
		{"fig13", fig13}, {"fig14", fig14},
		{"fences", fences}, {"encoder", encoder},
		{"ablation", ablation}, {"drams", drams}, {"collab", collab},
		{"corners", corners}, {"metrics", metricsBreakdown},
	}
	ran := false
	for _, r := range runners {
		if *exp != "all" && *exp != r.name {
			continue
		}
		ran = true
		fmt.Printf("==== %s ====\n", strings.ToUpper(r.name))
		if err := r.fn(); err != nil {
			fmt.Fprintf(os.Stderr, "pimbench: %s: %v\n", r.name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "pimbench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

func table1() error {
	fmt.Println("MAC units in a 20nm DRAM process, normalized to INT16 w/ 48-bit Acc.")
	fmt.Printf("%-24s %12s %12s %12s %12s\n", "Number format", "area(model)", "area(paper)", "e/op(model)", "e/op(paper)")
	for _, row := range macmodel.TableI() {
		fmt.Printf("%-24s %12.2f %12.2f %12.2f %12.2f\n",
			row.Format.Name, row.Area, row.PaperArea, row.Energy, row.PaperEnergy)
	}
	return nil
}

func table2() error {
	counts := isa.ComboCounts()
	fmt.Printf("%-10s %s\n", "Op", "# of operand combinations")
	total := 0
	for _, op := range []isa.Opcode{isa.MUL, isa.ADD, isa.MAC, isa.MAD} {
		fmt.Printf("%-10s %d\n", op, counts[op])
		total += counts[op]
	}
	fmt.Printf("%-10s %d\n", "MOV(ReLU)", counts[isa.MOV])
	fmt.Printf("compute combinations: %d (paper: 114); data movement: %d (paper: 24)\n",
		total, counts[isa.MOV])
	return nil
}

func table3() error {
	fmt.Println("Representative encodings of the 32-bit instruction formats:")
	prog, err := isa.Assemble(`
		NOP 7
		JUMP -1, 7
		EXIT
		MOV(AAM_RELU) GRF_A, EVEN_BANK
		FILL SRF_M[2], ODD_BANK
		ADD GRF_A[1], EVEN_BANK, SRF_A[1]
		MUL GRF_B[0], GRF_A[0], SRF_M[3]
		MAC(AAM) GRF_B, GRF_A, EVEN_BANK
		MAD GRF_A[2], ODD_BANK, SRF_M[2]
	`)
	if err != nil {
		return err
	}
	for _, in := range prog {
		w, err := isa.Encode(in)
		if err != nil {
			return err
		}
		fmt.Printf("  %#08x  %s\n", w, in)
	}
	return nil
}

func table4() error {
	cfg := hbm.PIMHBMConfig(sim.MemClockMHz)
	pimClockMHz := sim.MemClockMHz / 4 // PIM units run at tCK/4
	gflops := float64(pimClockMHz) / 1000 * 16 * 2
	fmt.Printf("%-28s %v / %v\n", "# of MUL/ADD FPUs", 16, 16)
	fmt.Printf("%-28s %d bits (16 x 16 lanes)\n", "Datapath width", 256)
	fmt.Printf("%-28s %d MHz (tCK/4)\n", "Operating frequency", pimClockMHz)
	fmt.Printf("%-28s %.1f GFLOPS (paper: 9.6 at 300 MHz)\n", "Throughput per unit", gflops)
	fmt.Printf("%-28s 32b x %d (CRF)\n", "Instruction registers", isa.CRFEntries)
	fmt.Printf("%-28s 256b x %d (GRF), 16b x %d (SRF)\n", "Vector/scalar registers", 2*isa.GRFEntries, 2*isa.SRFEntries)
	fmt.Printf("%-28s %d\n", "Pipeline stages", pim.PipelineStages)
	_ = cfg
	return nil
}

func table5() error {
	cfg := hbm.PIMHBMConfig(sim.MemClockMHz)
	fmt.Printf("%-30s %.1f GHz\n", "Ext. clocking frequency", float64(sim.MemClockMHz)/1000)
	fmt.Printf("%-30s same as HBM2 (drop-in)\n", "Timing parameters")
	fmt.Printf("%-30s %d\n", "# of pCHs", cfg.PseudoChannels)
	fmt.Printf("%-30s %d\n", "# of banks per pCH", cfg.Banks())
	fmt.Printf("%-30s %d\n", "# of PIM exe. units per pCH", cfg.PIMUnits)
	fmt.Printf("%-30s %.3f TB/s (paper: 1-1.229)\n", "On-chip compute bandwidth", cfg.OnChipGBps()/1000)
	fmt.Printf("%-30s %.1f GB/s (paper: 256-307.2)\n", "Off-chip I/O bandwidth", cfg.OffChipGBps())
	fmt.Printf("%-30s %d GiB PIM dies + 4 GiB HBM dies = 6 GiB\n", "Capacity", cfg.DeviceBytes()>>30)
	return nil
}

func table6() error {
	fmt.Printf("%-8s %-12s   %-8s %-10s\n", "Name", "GEMV dim", "Name", "ADD dim")
	specs := sim.TableVI()
	for i := 0; i < 4; i++ {
		g, a := specs[i], specs[i+4]
		fmt.Printf("%-8s %dk x %dk%*s %-8s %dM\n", g.Name, g.M/1024, g.K/1024,
			7-len(fmt.Sprintf("%dk x %dk", g.M/1024, g.K/1024))+7, "", a.Name, a.N>>20)
	}
	return nil
}

func pimSystems() (*sim.System, *sim.System, error) {
	p, err := sim.NewPIMSystem(hbm.VariantBase)
	if err != nil {
		return nil, nil, err
	}
	return p, sim.NewHostSystem(1), nil
}

func fig10() error {
	pimSys, hostSys, err := pimSystems()
	if err != nil {
		return err
	}
	fmt.Println("Relative performance (PIM-HBM over HBM) and host LLC miss rates:")
	fmt.Printf("%-10s %10s %10s %10s   %8s %8s %8s\n",
		"workload", "B1", "B2", "B4", "miss B1", "miss B2", "miss B4")
	type row struct {
		speed [3]float64
		miss  [3]float64
	}
	rows := map[string]*row{}
	order := []string{}
	for bi, b := range []int{1, 2, 4} {
		rs, err := sim.RunMicroSuite(pimSys, hostSys, b)
		if err != nil {
			return err
		}
		for _, r := range rs {
			e := rows[r.Spec.Name]
			if e == nil {
				e = &row{}
				rows[r.Spec.Name] = e
				order = append(order, r.Spec.Name)
			}
			e.speed[bi] = r.Speedup
			e.miss[bi] = r.HostLLCMiss
		}
	}
	for bi, b := range []int{1, 2, 4} {
		for _, m := range models.All() {
			r, err := sim.EvalApp(pimSys, hostSys, m, b)
			if err != nil {
				return err
			}
			e := rows[m.Name]
			if e == nil {
				e = &row{miss: [3]float64{-1, -1, -1}}
				rows[m.Name] = e
				order = append(order, m.Name)
			}
			e.speed[bi] = r.Speedup
		}
		_ = b
	}
	for _, name := range order {
		e := rows[name]
		fmt.Printf("%-10s %10.2f %10.2f %10.2f   ", name, e.speed[0], e.speed[1], e.speed[2])
		if e.miss[0] >= 0 {
			fmt.Printf("%8.2f %8.2f %8.2f\n", e.miss[0], e.miss[1], e.miss[2])
		} else {
			fmt.Printf("%8s %8s %8s\n", "-", "-", "-") // multi-kernel apps: no single rate (paper note)
		}
	}
	fmt.Println("\npaper anchors: GEMV up to 11.2x at B1, ADD ~1.6x, DS2 3.5x, GNMT 1.5x,")
	fmt.Println("AlexNet 1.4x, ResNet 1.0x; HBM wins GEMV at B4; miss 70-80% at B4.")
	return nil
}

func fig11() error {
	r, err := sim.RunFig11()
	if err != nil {
		return err
	}
	fmt.Println("Back-to-back RD power per pseudo channel (watts):")
	fmt.Printf("%-16s %10s %10s\n", "component", "HBM", "PIM-HBM")
	rows := []struct {
		name string
		h, p float64
	}{
		{"cell", r.HBM.Cell, r.PIM.Cell},
		{"IOSA+decoders", r.HBM.IOSA, r.PIM.IOSA},
		{"global IO bus", r.HBM.GlobalBus, r.PIM.GlobalBus},
		{"buffer-die IO", r.HBM.BufferIO, r.PIM.BufferIO},
		{"IO PHY", r.HBM.IOPHY, r.PIM.IOPHY},
		{"PIM FPUs", r.HBM.PIMFPU, r.PIM.PIMFPU},
		{"background", r.HBM.Background, r.PIM.Background},
	}
	for _, row := range rows {
		fmt.Printf("%-16s %10.3f %10.3f\n", row.name, row.h, row.p)
	}
	fmt.Printf("%-16s %10.3f %10.3f\n", "total", r.HBM.Total(), r.PIM.Total())
	fmt.Printf("\nPIM/HBM power ratio      %.3f  (paper: 1.054)\n", r.PowerRatio)
	fmt.Printf("without buffer-die IO    %.3f  (paper: ~0.9)\n", r.PowerRatioNoBufIO)
	fmt.Printf("cell+IOSA power scaling  %.2fx (proportional to active banks)\n", r.CellIOSARatio)
	fmt.Printf("energy per bit gain      %.2fx (paper: ~3.5x)\n", r.EnergyPerBitRatio)
	return nil
}

func fig12() error {
	pimSys, hostSys, err := pimSystems()
	if err != nil {
		return err
	}
	rows, err := sim.RunFig12(pimSys, hostSys)
	if err != nil {
		return err
	}
	fmt.Println("Average power (W) and energy-efficiency gain over PROC-HBM:")
	fmt.Printf("%-10s %9s %9s %9s   %10s %10s %10s\n",
		"workload", "PIM W", "HBM W", "HBMx4 W", "PIM gain", "x4 gain", "PIM/x4")
	for _, r := range rows {
		fmt.Printf("%-10s %9.1f %9.1f %9.1f   %10.2f %10.2f %10.2f\n",
			r.Workload, r.PimW, r.HostW, r.X4W, r.PimEnergyGain, r.X4EnergyGain, r.PimOverX4)
	}
	fmt.Println("\npaper anchors: GEMV 8.25x, ADD 1.4x, DS2 3.2x, GNMT 1.38x, AlexNet 1.5x;")
	fmt.Println("PIM over HBMx4: DS2 2.8x, GNMT 1.1x, AlexNet 1.3x.")
	return nil
}

func fig13() error {
	pimSys, hostSys, err := pimSystems()
	if err != nil {
		return err
	}
	res, err := sim.EvalApp(pimSys, hostSys, models.DS2(), 1)
	if err != nil {
		return err
	}
	fmt.Println("DS2 average system power over time (coalesced segments):")
	for _, side := range []struct {
		name string
		segs []sim.PowerSegment
	}{
		{"PROC-HBM", sim.PowerTimeline(res, hostSys, false)},
		{"PIM-HBM", sim.PowerTimeline(res, pimSys, true)},
	} {
		fmt.Printf("  %s:\n", side.name)
		for _, s := range coalesce(side.segs) {
			tag := ""
			if s.OnPIM {
				tag = "  [PIM]"
			}
			fmt.Printf("    %8.2f - %8.2f ms  %6.1f W  %s%s\n",
				s.StartNs/1e6, s.EndNs/1e6, s.Watts, s.Layer, tag)
		}
	}
	fmt.Printf("\nend-to-end: PROC-HBM %.1f ms, PIM-HBM %.1f ms (%.2fx; paper 3.5x)\n",
		res.HostNs/1e6, res.PimNs/1e6, res.Speedup)
	return nil
}

// coalesce merges adjacent segments with near-identical power.
func coalesce(segs []sim.PowerSegment) []sim.PowerSegment {
	var out []sim.PowerSegment
	for _, s := range segs {
		if n := len(out); n > 0 {
			last := &out[n-1]
			if last.OnPIM == s.OnPIM && abs(last.Watts-s.Watts) < 2 {
				last.EndNs = s.EndNs
				continue
			}
		}
		out = append(out, s)
	}
	return out
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func fig14() error {
	rs, err := dse.Run()
	if err != nil {
		return err
	}
	fmt.Println("Speedup over the HBM host per variant (batch 1):")
	fmt.Printf("%-8s", "bench")
	for _, r := range rs {
		fmt.Printf(" %12s", r.Variant)
	}
	fmt.Println()
	for _, spec := range dse.Benchmarks() {
		fmt.Printf("%-8s", spec.Name)
		for _, r := range rs {
			fmt.Printf(" %12.2f", r.Speedups[spec.Name])
		}
		fmt.Println()
	}
	fmt.Printf("%-8s", "geomean")
	for _, r := range rs {
		fmt.Printf(" %12.2f", r.Geomean)
	}
	fmt.Println()
	fmt.Printf("%-8s", "vs base")
	for _, r := range rs {
		fmt.Printf(" %11.0f%%", 100*(r.GeomeanOverBase-1))
	}
	fmt.Println()
	fmt.Println("\npaper anchors: 2x ~ +40%, 2BA ~ +20% (ADD-heavy), SRW ~ +10% (+25% on GEMV).")
	return nil
}

func fences() error {
	fmt.Println("In-order PIM controller study: gain from removing fences:")
	for _, b := range []int{1, 2, 4} {
		r, err := sim.RunFenceStudy(b)
		if err != nil {
			return err
		}
		fmt.Printf("  batch %d: geomean %.2fx (paper reads ~2.2/1.9/2.0)\n", b, r.Geomean)
	}
	return nil
}

func ablation() error {
	fmt.Println("Design-choice ablations (see internal/sim/ablation.go):")
	all, err := sim.RunAblations()
	if err != nil {
		return err
	}
	for _, name := range []string{"fence-cost", "refresh-rate", "address-mapping", "activate-ahead", "write-buffer"} {
		fmt.Printf("  %s:\n", name)
		for _, p := range all[name] {
			fmt.Printf("    %-26s %10.2f %s\n", p.Label, p.Value, p.Metric)
		}
	}
	return nil
}

func drams() error {
	fmt.Println("The same PIM stack on other standard DRAM families (Section III):")
	fmt.Printf("%-8s %10s %10s %12s %12s\n", "family", "units/ch", "channels", "on-chip GB/s", "off-chip GB/s")
	for _, tc := range []struct {
		name string
		cfg  hbm.Config
	}{
		{"HBM2", hbm.PIMHBMConfig(1200)},
		{"GDDR6", hbm.GDDR6PIMConfig(1250)},
		{"LPDDR5", hbm.LPDDR5PIMConfig(800)},
	} {
		fmt.Printf("%-8s %10d %10d %12.1f %12.1f\n", tc.name,
			tc.cfg.PIMUnits, tc.cfg.PseudoChannels, tc.cfg.OnChipGBps(), tc.cfg.OffChipGBps())
	}
	fmt.Println("\n(the functional GEMV/ADD kernels run bit-exact on all three; see")
	fmt.Println(" internal/blas/drams_test.go)")
	return nil
}

func collab() error {
	pimSys, hostSys, err := pimSystems()
	if err != nil {
		return err
	}
	r, err := sim.RunCollaborativeGemv(pimSys, hostSys, 8192, 8192)
	if err != nil {
		return err
	}
	fmt.Printf("Collaborative GEMV %dx%d (Section VIII future work), K split:\n", r.M, r.K)
	for _, p := range r.Points {
		marker := ""
		if p == r.Best {
			marker = "  <- best"
		}
		fmt.Printf("  host share %5.1f%%  %10.1f us%s\n", 100*p.HostFrac, p.Ns/1000, marker)
	}
	fmt.Printf("\nPIM-only %.1f us, host-only %.1f us; best split gains %.1f%% over PIM-only\n",
		r.PimOnly/1000, r.HostOnly/1000, r.BestGainPct)
	return nil
}

func corners() error {
	cs, err := sim.RunClockCorners()
	if err != nil {
		return err
	}
	fmt.Println("Frequency corners (Tables IV/V list 1.0 and 1.2 GHz parts):")
	fmt.Printf("%-8s %14s %14s %14s %12s\n", "clock", "on-chip TB/s", "off-chip GB/s", "GFLOPS/unit", "GEMV4 us")
	for _, c := range cs {
		fmt.Printf("%.1f GHz %14.3f %14.1f %14.1f %12.1f\n",
			float64(c.MHz)/1000, c.OnChipTBps, c.OffChipGBps, c.UnitGFLOPS, c.GEMV4Us)
	}
	return nil
}

func metricsBreakdown() error {
	rows, err := sim.RunPhaseBreakdown()
	if err != nil {
		return err
	}
	fmt.Println("Per-kernel runtime phase breakdown (count / cycles per phase),")
	fmt.Println("from metrics snapshot diffs around each kernel:")
	fmt.Printf("%-12s %10s", "kernel", "cycles")
	if len(rows) > 0 {
		for _, p := range rows[0].Phases {
			fmt.Printf(" %16s", p.Name)
		}
	}
	fmt.Println()
	for _, r := range rows {
		fmt.Printf("%-12s %10d", r.Kernel, r.Cycles)
		for _, p := range r.Phases {
			fmt.Printf(" %16s", fmt.Sprintf("%d/%d", p.Count, p.Cycles))
		}
		fmt.Println()
	}
	return nil
}

func encoder() error {
	pimSys, hostSys, err := pimSystems()
	if err != nil {
		return err
	}
	whole, err := sim.EvalApp(pimSys, hostSys, models.GNMT(), 1)
	if err != nil {
		return err
	}
	enc, err := sim.EvalApp(pimSys, hostSys, models.GNMT().EncoderOnly(), 1)
	if err != nil {
		return err
	}
	fmt.Printf("GNMT whole model: %.2fx (paper 1.5x)\n", whole.Speedup)
	fmt.Printf("LSTM encoder only: %.2fx (paper 6.2x; see EXPERIMENTS.md on the gap)\n", enc.Speedup)
	return nil
}

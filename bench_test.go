package pimsim

// One benchmark per table and figure of the paper's evaluation. Each
// iteration regenerates the experiment from scratch through the simulator
// and reports the headline quantity as a custom metric, so
// `go test -bench=. -benchmem` both exercises the full stack and prints
// the reproduced numbers next to the paper's anchors.

import (
	"sync"
	"testing"

	"pimsim/internal/blas"
	"pimsim/internal/dse"
	"pimsim/internal/fp16"
	"pimsim/internal/hbm"
	"pimsim/internal/isa"
	"pimsim/internal/macmodel"
	"pimsim/internal/memctrl"
	"pimsim/internal/models"
	"pimsim/internal/obs"
	"pimsim/internal/runtime"
	"pimsim/internal/sim"
)

var (
	sysOnce sync.Once
	pimSys  *sim.System
	hostSys *sim.System
	sysErr  error
)

func systems(b *testing.B) (*sim.System, *sim.System) {
	b.Helper()
	sysOnce.Do(func() {
		pimSys, sysErr = sim.NewPIMSystem(hbm.VariantBase)
		hostSys = sim.NewHostSystem(1)
	})
	if sysErr != nil {
		b.Fatal(sysErr)
	}
	return pimSys, hostSys
}

// BenchmarkTable1MACModel evaluates the MAC area/energy estimator over
// all Table I formats and reports the FP32/INT16 area ratio (paper 3.96).
func BenchmarkTable1MACModel(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows := macmodel.TableI()
		ratio = rows[5].Area / rows[0].Area
	}
	b.ReportMetric(ratio, "fp32/int16-area")
}

// BenchmarkTable2Combos enumerates the legal operand routings (paper: 114
// compute + 24 movement).
func BenchmarkTable2Combos(b *testing.B) {
	var compute int
	for i := 0; i < b.N; i++ {
		compute = len(isa.ComputeCombos())
	}
	b.ReportMetric(float64(compute), "compute-combos")
}

// BenchmarkTable3Encode round-trips the whole legal instruction space
// through the 32-bit Table III encoding.
func BenchmarkTable3Encode(b *testing.B) {
	combos := isa.ComputeCombos()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range combos {
			in := isa.Instruction{Op: c.Op, Dst: c.Dst, Src0: c.Src0, Src1: c.Src1}
			w, err := isa.Encode(in)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := isa.Decode(w); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTable4UnitThroughput measures the functional SIMD datapath: one
// unit's 16-lane MAC rate in the software model.
func BenchmarkTable4UnitThroughput(b *testing.B) {
	acc := fp16.NewVector(fp16.Lanes)
	x := fp16.NewVector(fp16.Lanes)
	w := fp16.NewVector(fp16.Lanes)
	for i := range x {
		x[i] = fp16.FromFloat32(float32(i) * 0.25)
		w[i] = fp16.FromFloat32(1.5)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fp16.MACVec(acc, x, w)
	}
	b.ReportMetric(float64(fp16.Lanes), "lane-MACs/op")
}

// BenchmarkTable5DeviceBandwidth drives a steady AB-PIM MAC stream through
// one pseudo channel and reports delivered on-chip GB/s (Table V: ~77
// GB/s per channel at 1.2 GHz, 1.229 TB/s per 16-channel device).
func BenchmarkTable5DeviceBandwidth(b *testing.B) {
	var gbps float64
	for i := 0; i < b.N; i++ {
		g, err := sim.OnChipStreamGBps(4096)
		if err != nil {
			b.Fatal(err)
		}
		gbps = g
	}
	b.ReportMetric(gbps, "onchip-GB/s-per-pCH")
}

// BenchmarkTable6Microbench runs the whole Table VI set at batch 1.
func BenchmarkTable6Microbench(b *testing.B) {
	p, h := systems(b)
	var geo float64
	for i := 0; i < b.N; i++ {
		rs, err := sim.RunMicroSuite(p, h, 1)
		if err != nil {
			b.Fatal(err)
		}
		geo = sim.GeoMeanSpeedup(rs)
	}
	b.ReportMetric(geo, "geomean-xHBM")
}

// BenchmarkFig10GEMV reports the headline GEMV4 batch-1 speedup (paper
// 11.2x).
func BenchmarkFig10GEMV(b *testing.B) {
	p, h := systems(b)
	var speedup float64
	for i := 0; i < b.N; i++ {
		r, err := sim.RunMicro(p, h, sim.MicroSpec{Name: "GEMV4", M: 8192, K: 8192}, 1)
		if err != nil {
			b.Fatal(err)
		}
		speedup = r.Speedup
	}
	b.ReportMetric(speedup, "xHBM(paper:11.2)")
}

// BenchmarkFig10ADD reports the ADD2 batch-1 speedup (paper ~1.6x).
func BenchmarkFig10ADD(b *testing.B) {
	p, h := systems(b)
	var speedup float64
	for i := 0; i < b.N; i++ {
		r, err := sim.RunMicro(p, h, sim.MicroSpec{Name: "ADD2", N: 4 << 20}, 1)
		if err != nil {
			b.Fatal(err)
		}
		speedup = r.Speedup
	}
	b.ReportMetric(speedup, "xHBM(paper:1.6)")
}

// BenchmarkFig10Apps evaluates all five applications at batch 1 and
// reports the DS2 speedup (paper 3.5x).
func BenchmarkFig10Apps(b *testing.B) {
	p, h := systems(b)
	var ds2 float64
	for i := 0; i < b.N; i++ {
		for _, m := range models.All() {
			r, err := sim.EvalApp(p, h, m, 1)
			if err != nil {
				b.Fatal(err)
			}
			if m.Name == "DS2" {
				ds2 = r.Speedup
			}
		}
	}
	b.ReportMetric(ds2, "DS2-xHBM(paper:3.5)")
}

// BenchmarkFig10Batching runs the batch 1/2/4 sweep of the
// microbenchmarks (the crossover study).
func BenchmarkFig10Batching(b *testing.B) {
	p, h := systems(b)
	var b4gemv float64
	for i := 0; i < b.N; i++ {
		for _, batch := range []int{1, 2, 4} {
			rs, err := sim.RunMicroSuite(p, h, batch)
			if err != nil {
				b.Fatal(err)
			}
			if batch == 4 {
				b4gemv = rs[3].Speedup
			}
		}
	}
	b.ReportMetric(b4gemv, "GEMV4-B4-xHBM(<1)")
}

// BenchmarkFig11Power reproduces the back-to-back RD power comparison and
// reports the PIM/HBM power ratio (paper 1.054).
func BenchmarkFig11Power(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		r, err := sim.RunFig11()
		if err != nil {
			b.Fatal(err)
		}
		ratio = r.PowerRatio
	}
	b.ReportMetric(ratio, "power-ratio(paper:1.054)")
}

// BenchmarkFig12Energy reports the GEMV system-energy gain (paper 8.25x).
func BenchmarkFig12Energy(b *testing.B) {
	p, h := systems(b)
	var gain float64
	for i := 0; i < b.N; i++ {
		rows, err := sim.RunFig12(p, h)
		if err != nil {
			b.Fatal(err)
		}
		gain = rows[0].PimEnergyGain
	}
	b.ReportMetric(gain, "GEMV-energy-gain(paper:8.25)")
}

// BenchmarkFig13Timeline builds the DS2 power-over-time traces.
func BenchmarkFig13Timeline(b *testing.B) {
	p, h := systems(b)
	var segs int
	for i := 0; i < b.N; i++ {
		r, err := sim.EvalApp(p, h, models.DS2(), 1)
		if err != nil {
			b.Fatal(err)
		}
		segs = len(sim.PowerTimeline(r, p, true)) + len(sim.PowerTimeline(r, h, false))
	}
	b.ReportMetric(float64(segs), "segments")
}

// BenchmarkFig14DSE runs the full design space exploration and reports
// the 2x variant's geomean gain over the product (paper ~+40%).
func BenchmarkFig14DSE(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		rs, err := dse.Run()
		if err != nil {
			b.Fatal(err)
		}
		gain = rs[1].GeomeanOverBase
	}
	b.ReportMetric(gain, "2x-over-base(paper:~1.4)")
}

// BenchmarkFenceStudy reproduces the in-order controller analysis
// (Section VII-B; the paper reads ~2x).
func BenchmarkFenceStudy(b *testing.B) {
	var geo float64
	for i := 0; i < b.N; i++ {
		r, err := sim.RunFenceStudy(1)
		if err != nil {
			b.Fatal(err)
		}
		geo = r.Geomean
	}
	b.ReportMetric(geo, "nofence-gain(paper:~2)")
}

// BenchmarkEncoderStudy reproduces the GNMT encoder-only analysis.
func BenchmarkEncoderStudy(b *testing.B) {
	p, h := systems(b)
	var sp float64
	for i := 0; i < b.N; i++ {
		r, err := sim.EvalApp(p, h, models.GNMT().EncoderOnly(), 1)
		if err != nil {
			b.Fatal(err)
		}
		sp = r.Speedup
	}
	b.ReportMetric(sp, "encoder-xHBM")
}

// BenchmarkFunctionalGemv measures the simulator itself: a fully
// functional (bit-exact) GEMV through the device model.
func BenchmarkFunctionalGemv(b *testing.B) {
	cfg := hbm.PIMHBMConfig(1200)
	cfg.PseudoChannels = 2
	cfg.Functional = true
	const M, K = 256, 512
	W := fp16.NewVector(M * K)
	x := fp16.NewVector(K)
	for i := range W {
		W[i] = fp16.FromFloat32(float32(i%13) * 0.1)
	}
	for i := range x {
		x[i] = fp16.FromFloat32(float32(i%7) * 0.2)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dev := hbm.MustNewDevice(cfg)
		rt, err := runtime.New([]*hbm.Device{dev})
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := blas.PimGemv(rt, W, M, K, x); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(2 * M * K))
}

// BenchmarkTimingOnlyGemv measures the event-driven fast path used by the
// experiment sweeps.
func BenchmarkTimingOnlyGemv(b *testing.B) {
	cfg := hbm.PIMHBMConfig(1200)
	cfg.Functional = false
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dev := hbm.MustNewDevice(cfg)
		rt, err := runtime.New([]*hbm.Device{dev})
		if err != nil {
			b.Fatal(err)
		}
		rt.SimChannels = 1
		if _, _, err := blas.PimGemv(rt, nil, 4096, 8192, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(2 * 4096 * 8192)
}

// BenchmarkMixedStreamGemv measures the timing core on the workload the
// lockstep broadcast fast path cannot collapse: interleaved SB demand
// traffic (random FR-FCFS transactions through the host scheduler) and
// AB-PIM GEMV kernel bursts on the same channel, the paper's mixed
// host/PIM serving shape (the DS2/RNN-T/GNMT layer split). Each round is
// a demand burst, a precharge-all (the host flushes before the mode
// switch), then a GEMV chunk.
//
// mixedStreamBaselineNs is this benchmark's ns/op measured at commit
// 5067723 (the tree immediately before the event-driven timing core:
// per-command all-bank scans, per-trigger struct copies, O(window^2)
// look-ahead). Reported as a metric so BENCH_gemv.json carries both the
// pre-change baseline and the current number, and `benchjson -check`
// can gate the speedup ratio.
const mixedStreamBaselineNs = 8828858.0

func BenchmarkMixedStreamGemv(b *testing.B) {
	cfg := hbm.PIMHBMConfig(1200)
	cfg.Functional = false
	const (
		rounds = 8
		burst  = 256
		M, K   = 1024, 2048
	)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dev := hbm.MustNewDevice(cfg)
		rt, err := runtime.New([]*hbm.Device{dev})
		if err != nil {
			b.Fatal(err)
		}
		rt.SimChannels = 1
		sched := memctrl.NewScheduler(rt.Chans[0], cfg)
		sched.AutoRelease = true
		var state uint64
		next := func() uint64 { // splitmix64: avalanched low bits
			state += 0x9E3779B97F4A7C15
			z := state
			z ^= z >> 30
			z *= 0xBF58476D1CE4E5B9
			z ^= z >> 27
			z *= 0x94D049BB133111EB
			return z ^ z>>31
		}
		for r := 0; r < rounds; r++ {
			for t := 0; t < burst; t++ {
				v := next()
				loc := memctrl.Loc{
					BG:   int(v % uint64(cfg.BankGroups)),
					Bank: int(v >> 2 % uint64(cfg.BanksPerGroup)),
					Row:  uint32(v >> 4 % 512),
					Col:  uint32(v >> 13 % uint64(cfg.ColumnsPerRow())),
				}
				sched.Enqueue(v>>23%10 < 3, loc, nil)
			}
			if _, err := sched.Drain(); err != nil {
				b.Fatal(err)
			}
			if err := sched.CloseAll(); err != nil {
				b.Fatal(err)
			}
			if _, _, err := blas.PimGemv(rt, nil, M, K, nil); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.SetBytes(rounds * (2*M*K + burst*32))
	b.ReportMetric(mixedStreamBaselineNs, "baseline_ns/op")
}

// BenchmarkTracedTimingOnlyGemv is the same kernel with the command
// timeline attached — the enabled-path cost of observability, priced
// against BenchmarkTimingOnlyGemv in BENCH_gemv.json.
func BenchmarkTracedTimingOnlyGemv(b *testing.B) {
	cfg := hbm.PIMHBMConfig(1200)
	cfg.Functional = false
	// The timeline outlives iterations: Reset keeps the event-buffer
	// capacity, pricing the steady-state recording cost rather than the
	// one-time buffer growth (which once dominated at ~9.9 MB/op). The
	// warm-up run below grows the buffers outside the timed region.
	tl := obs.FromHBM(cfg, 1, 0)
	{
		dev := hbm.MustNewDevice(cfg)
		rt, err := runtime.New([]*hbm.Device{dev})
		if err != nil {
			b.Fatal(err)
		}
		rt.SimChannels = 1
		rt.AttachTimeline(tl)
		if _, _, err := blas.PimGemv(rt, nil, 4096, 8192, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dev := hbm.MustNewDevice(cfg)
		rt, err := runtime.New([]*hbm.Device{dev})
		if err != nil {
			b.Fatal(err)
		}
		rt.SimChannels = 1
		tl.Reset()
		rt.AttachTimeline(tl)
		if _, _, err := blas.PimGemv(rt, nil, 4096, 8192, nil); err != nil {
			b.Fatal(err)
		}
		if tl.Events() == 0 {
			b.Fatal("timeline recorded nothing")
		}
	}
	b.SetBytes(2 * 4096 * 8192)
}

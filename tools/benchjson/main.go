// benchjson converts `go test -bench -benchmem` output on stdin into a
// machine-readable JSON report. Input lines are echoed to stdout so the
// benchmark run stays visible in the terminal/CI log:
//
//	go test -run '^$' -bench 'Gemv$' -benchmem . | benchjson -out BENCH_gemv.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerS      float64 `json:"mb_per_s,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`

	// Extra holds custom units (testing.B.ReportMetric or tools like
	// cmd/pimload emit e.g. "1234.5 req/s", "87 p99_us"), keyed by unit.
	Extra map[string]float64 `json:"extra,omitempty"`
}

type report struct {
	GOOS       string   `json:"goos,omitempty"`
	GOARCH     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []result `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "BENCH.json", "output JSON file")
	check := flag.String("check", "", "baseline JSON file: compare stdin results against it instead of writing")
	maxRatio := flag.Float64("max-ratio", 2.5, "with -check, fail when ns/op or B/op exceeds baseline by this factor")
	flag.Parse()

	var rep report
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBench(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(rep.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark result lines on stdin"))
	}
	if *check != "" {
		data, err := os.ReadFile(*check)
		if err != nil {
			fatal(err)
		}
		var base report
		if err := json.Unmarshal(data, &base); err != nil {
			fatal(fmt.Errorf("parsing baseline %s: %w", *check, err))
		}
		failures := checkBaseline(base, rep, *maxRatio)
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "benchjson:", f)
		}
		if len(failures) > 0 {
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: %d results within %.1fx of %s\n",
			len(rep.Benchmarks), *maxRatio, *check)
		return
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(rep.Benchmarks), *out)
}

// parseBench decodes one result line, e.g.
//
//	BenchmarkTimingOnlyGemv-8  10  109675585 ns/op  611.89 MB/s  12909501 B/op  398099 allocs/op
func parseBench(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return result{}, false
	}
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		name = name[:i] // strip the -GOMAXPROCS suffix
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			r.NsPerOp, err = strconv.ParseFloat(v, 64)
		case "MB/s":
			r.MBPerS, err = strconv.ParseFloat(v, 64)
		case "B/op":
			r.BytesPerOp, err = strconv.ParseInt(v, 10, 64)
		case "allocs/op":
			r.AllocsPerOp, err = strconv.ParseInt(v, 10, 64)
		default:
			// Custom metric: keep it rather than dropping it silently.
			if f, ferr := strconv.ParseFloat(v, 64); ferr == nil {
				if r.Extra == nil {
					r.Extra = make(map[string]float64)
				}
				r.Extra[unit] = f
			}
		}
		if err != nil {
			return result{}, false
		}
	}
	return r, true
}

// checkBaseline compares each current result against its baseline entry
// (matched by name) and reports a failure when ns/op or B/op exceeds the
// baseline by more than ratio. The factor is deliberately generous — CI
// machines differ from the one that recorded BENCH_gemv.json, so this
// catches order-of-magnitude regressions (a dropped fast path, an
// allocation blow-up), not percent-level drift. Benchmarks absent from
// the baseline pass; a baseline entry with no current result fails, so a
// renamed or deleted benchmark can't silently drop out of the gate.
func checkBaseline(base, cur report, ratio float64) []string {
	var failures []string
	current := make(map[string]result, len(cur.Benchmarks))
	for _, r := range cur.Benchmarks {
		current[r.Name] = r
	}
	for _, b := range base.Benchmarks {
		r, ok := current[b.Name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: in baseline but not in this run", b.Name))
			continue
		}
		if b.NsPerOp > 0 && r.NsPerOp > b.NsPerOp*ratio {
			failures = append(failures, fmt.Sprintf("%s: %.0f ns/op exceeds baseline %.0f ns/op by more than %.1fx",
				b.Name, r.NsPerOp, b.NsPerOp, ratio))
		}
		if b.BytesPerOp > 0 && float64(r.BytesPerOp) > float64(b.BytesPerOp)*ratio {
			failures = append(failures, fmt.Sprintf("%s: %d B/op exceeds baseline %d B/op by more than %.1fx",
				b.Name, r.BytesPerOp, b.BytesPerOp, ratio))
		}
		if b.MBPerS > 0 && r.MBPerS > 0 && r.MBPerS < b.MBPerS/ratio {
			failures = append(failures, fmt.Sprintf("%s: %.1f MB/s fell below baseline %.1f MB/s by more than %.1fx",
				b.Name, r.MBPerS, b.MBPerS, ratio))
		}
		failures = append(failures, checkExtras(b, r, ratio)...)
	}
	return failures
}

// checkExtras gates the custom units. Rate-like units (a "/s" suffix:
// req/s, sim_req/s) regress downward, so they fail when the current value
// falls below baseline/ratio; latency-like units (_ns/_us/_ms suffixes:
// p99_us) regress upward, like ns/op. Every other custom unit — paper
// anchors, counts, gains, recorded constants like baseline_ns/op —
// carries no machine-independent contract and is not gated here (gains
// have their own hard floor in cmd/pimload's -min-gain).
func checkExtras(b, r result, ratio float64) []string {
	var failures []string
	for unit, bv := range b.Extra {
		rate := strings.HasSuffix(unit, "/s")
		latency := strings.HasSuffix(unit, "_ns") || strings.HasSuffix(unit, "_us") || strings.HasSuffix(unit, "_ms")
		if (!rate && !latency) || bv <= 0 {
			continue
		}
		rv, ok := r.Extra[unit]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: unit %q in baseline but not in this run", b.Name, unit))
			continue
		}
		if rate && rv < bv/ratio {
			failures = append(failures, fmt.Sprintf("%s: %.1f %s fell below baseline %.1f by more than %.1fx",
				b.Name, rv, unit, bv, ratio))
		}
		if latency && rv > bv*ratio {
			failures = append(failures, fmt.Sprintf("%s: %.1f %s exceeds baseline %.1f by more than %.1fx",
				b.Name, rv, unit, bv, ratio))
		}
	}
	return failures
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

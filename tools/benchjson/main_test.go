package main

import "testing"

func TestParseBenchStandard(t *testing.T) {
	r, ok := parseBench("BenchmarkTimingOnlyGemv-8  10  109675585 ns/op  611.89 MB/s  12909501 B/op  398099 allocs/op")
	if !ok {
		t.Fatal("standard line rejected")
	}
	if r.Name != "BenchmarkTimingOnlyGemv" {
		t.Errorf("name %q: -GOMAXPROCS suffix not stripped", r.Name)
	}
	if r.Iterations != 10 || r.NsPerOp != 109675585 || r.MBPerS != 611.89 ||
		r.BytesPerOp != 12909501 || r.AllocsPerOp != 398099 {
		t.Errorf("bad parse: %+v", r)
	}
	if len(r.Extra) != 0 {
		t.Errorf("standard units leaked into Extra: %v", r.Extra)
	}
}

func TestParseBenchCustomUnits(t *testing.T) {
	// The shape cmd/pimload emits: ns/op plus serving metrics.
	r, ok := parseBench("BenchmarkServe/closed/batch4-8 96 208333 ns/op 4800.0 req/s 612.5 p99_us 3.84 avg_batch")
	if !ok {
		t.Fatal("custom-unit line rejected")
	}
	if r.NsPerOp != 208333 {
		t.Errorf("ns/op = %v", r.NsPerOp)
	}
	want := map[string]float64{"req/s": 4800, "p99_us": 612.5, "avg_batch": 3.84}
	for unit, v := range want {
		if r.Extra[unit] != v {
			t.Errorf("Extra[%q] = %v, want %v", unit, r.Extra[unit], v)
		}
	}
}

func TestCheckBaseline(t *testing.T) {
	base := report{Benchmarks: []result{
		{Name: "BenchmarkA", NsPerOp: 1000, BytesPerOp: 500},
		{Name: "BenchmarkGone", NsPerOp: 10},
	}}

	// Within the factor on both axes, plus a benchmark the baseline
	// doesn't know about — only the missing baseline entry fails.
	cur := report{Benchmarks: []result{
		{Name: "BenchmarkA", NsPerOp: 2400, BytesPerOp: 1200},
		{Name: "BenchmarkNew", NsPerOp: 1},
	}}
	fails := checkBaseline(base, cur, 2.5)
	if len(fails) != 1 {
		t.Fatalf("got %d failures, want 1 (missing BenchmarkGone): %v", len(fails), fails)
	}

	// Time regression and allocation regression each fail independently.
	cur = report{Benchmarks: []result{
		{Name: "BenchmarkA", NsPerOp: 2600, BytesPerOp: 1300},
		{Name: "BenchmarkGone", NsPerOp: 10},
	}}
	fails = checkBaseline(base, cur, 2.5)
	if len(fails) != 2 {
		t.Fatalf("got %d failures, want 2 (ns/op and B/op): %v", len(fails), fails)
	}
}

func TestParseBenchRejectsGarbage(t *testing.T) {
	for _, line := range []string{
		"BenchmarkX",                  // too few fields
		"BenchmarkX notanint 5 ns/op", // bad iteration count
		"BenchmarkX 10 zzz ns/op",     // bad value for a known unit
	} {
		if _, ok := parseBench(line); ok {
			t.Errorf("accepted %q", line)
		}
	}
	// An unparsable custom value is skipped, not fatal: the known units
	// still make the line useful.
	r, ok := parseBench("BenchmarkX 10 5 ns/op abc widgets")
	if !ok || r.NsPerOp != 5 {
		t.Errorf("line with bad custom value rejected: %+v ok=%v", r, ok)
	}
	if len(r.Extra) != 0 {
		t.Errorf("unparsable custom value kept: %v", r.Extra)
	}
}

// tracecheck validates Chrome trace-event JSON files (the format pimsim
// -timeline and pimserve's trace dumps emit, loadable in Perfetto). It
// enforces the envelope ({"traceEvents": [...]}) and the per-event
// schema: every event names itself and carries a known phase, complete
// slices ("X") have numeric ts/dur/pid/tid with dur >= 0, metadata and
// counter events carry args, instants carry a scope. CI runs it over the
// smoke-test artifacts before uploading them.
//
//	tracecheck out.json spans.json
//	tracecheck -min-events 100 out.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
)

func main() {
	minEvents := flag.Int("min-events", 1, "fail a file holding fewer trace events")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-min-events N] file.json...")
		os.Exit(2)
	}
	bad := false
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %v\n", err)
			bad = true
			continue
		}
		n, err := validate(f, *minEvents)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", path, err)
			bad = true
			continue
		}
		fmt.Printf("tracecheck: %s: %d events ok\n", path, n)
	}
	if bad {
		os.Exit(1)
	}
}

// validate checks one trace file and returns how many events it holds.
func validate(r io.Reader, minEvents int) (int, error) {
	var file struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	dec := json.NewDecoder(r)
	if err := dec.Decode(&file); err != nil {
		return 0, fmt.Errorf("invalid JSON: %w", err)
	}
	if file.TraceEvents == nil {
		return 0, fmt.Errorf("missing traceEvents array")
	}
	for i, ev := range file.TraceEvents {
		if name, _ := ev["name"].(string); name == "" {
			return 0, fmt.Errorf("event %d: missing name", i)
		}
		ph, _ := ev["ph"].(string)
		switch ph {
		case "X":
			for _, f := range []string{"ts", "dur", "pid", "tid"} {
				if _, ok := ev[f].(float64); !ok {
					return 0, fmt.Errorf("event %d (%v): ph=X missing numeric %s", i, ev["name"], f)
				}
			}
			if dur := ev["dur"].(float64); dur < 0 {
				return 0, fmt.Errorf("event %d (%v): negative dur %v", i, ev["name"], dur)
			}
		case "M", "C":
			if _, ok := ev["args"].(map[string]any); !ok {
				return 0, fmt.Errorf("event %d (%v): ph=%s missing args", i, ev["name"], ph)
			}
		case "i":
			if s, _ := ev["s"].(string); s == "" {
				return 0, fmt.Errorf("event %d (%v): ph=i missing scope", i, ev["name"])
			}
		default:
			return 0, fmt.Errorf("event %d (%v): unknown ph %q", i, ev["name"], ph)
		}
	}
	if len(file.TraceEvents) < minEvents {
		return 0, fmt.Errorf("only %d events, want >= %d", len(file.TraceEvents), minEvents)
	}
	return len(file.TraceEvents), nil
}

package main

import (
	"strings"
	"testing"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		name    string
		in      string
		min     int
		wantN   int
		wantErr string
	}{
		{
			name:  "valid mixed phases",
			in:    `{"traceEvents":[{"name":"ACT","ph":"X","ts":0,"dur":14.2,"pid":0,"tid":0},{"name":"process_name","ph":"M","pid":0,"tid":0,"args":{"name":"pCH0"}},{"name":"pim_instr","ph":"C","ts":1,"pid":0,"tid":2,"args":{"instr":8}},{"name":"redispatch","ph":"i","ts":2,"pid":1,"tid":1,"s":"t"}]}`,
			min:   1,
			wantN: 4,
		},
		{name: "zero dur is legal", in: `{"traceEvents":[{"name":"e","ph":"X","ts":1,"dur":0,"pid":0,"tid":0}]}`, min: 1, wantN: 1},
		{name: "not json", in: `perfetto?`, min: 1, wantErr: "invalid JSON"},
		{name: "no envelope", in: `{"events":[]}`, min: 1, wantErr: "missing traceEvents"},
		{name: "unnamed event", in: `{"traceEvents":[{"ph":"X","ts":0,"dur":1,"pid":0,"tid":0}]}`, min: 1, wantErr: "missing name"},
		{name: "X without dur", in: `{"traceEvents":[{"name":"e","ph":"X","ts":0,"pid":0,"tid":0}]}`, min: 1, wantErr: "missing numeric dur"},
		{name: "negative dur", in: `{"traceEvents":[{"name":"e","ph":"X","ts":0,"dur":-1,"pid":0,"tid":0}]}`, min: 1, wantErr: "negative dur"},
		{name: "metadata without args", in: `{"traceEvents":[{"name":"thread_name","ph":"M","pid":0,"tid":0}]}`, min: 1, wantErr: "missing args"},
		{name: "instant without scope", in: `{"traceEvents":[{"name":"e","ph":"i","ts":0,"pid":0,"tid":0}]}`, min: 1, wantErr: "missing scope"},
		{name: "unknown phase", in: `{"traceEvents":[{"name":"e","ph":"B","ts":0,"pid":0,"tid":0}]}`, min: 1, wantErr: `unknown ph "B"`},
		{name: "too few events", in: `{"traceEvents":[{"name":"e","ph":"X","ts":0,"dur":1,"pid":0,"tid":0}]}`, min: 5, wantErr: "only 1 events"},
		{name: "empty ok at min 0", in: `{"traceEvents":[]}`, min: 0, wantN: 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n, err := validate(strings.NewReader(tc.in), tc.min)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				if n != tc.wantN {
					t.Errorf("counted %d events, want %d", n, tc.wantN)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %v, want containing %q", err, tc.wantErr)
			}
		})
	}
}

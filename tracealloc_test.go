package pimsim

// Regression pin for the traced-run allocation blow-up: attaching the
// command timeline once cost ~9.9 MB per GEMV run against ~0.5 MB
// untraced, because every run grew fresh event buffers. With the
// timeline reused across runs (obs.Timeline.Reset keeps capacity) a
// traced run must allocate within 2x of an untraced one.

import (
	goruntime "runtime"
	"testing"

	"pimsim/internal/blas"
	"pimsim/internal/hbm"
	"pimsim/internal/obs"
	"pimsim/internal/runtime"
)

func TestTracedRunAllocationOverhead(t *testing.T) {
	cfg := hbm.PIMHBMConfig(1200)
	cfg.Functional = false
	const m, k = 1024, 4096

	run := func(tl *obs.Timeline) {
		dev := hbm.MustNewDevice(cfg)
		rt, err := runtime.New([]*hbm.Device{dev})
		if err != nil {
			t.Fatal(err)
		}
		rt.SimChannels = 1
		if tl != nil {
			tl.Reset()
			rt.AttachTimeline(tl)
		}
		if _, _, err := blas.PimGemv(rt, nil, m, k, nil); err != nil {
			t.Fatal(err)
		}
		if tl != nil && tl.Events() == 0 {
			t.Fatal("timeline recorded nothing")
		}
	}

	allocBytes := func(f func()) uint64 {
		var before, after goruntime.MemStats
		goruntime.GC()
		goruntime.ReadMemStats(&before)
		f()
		goruntime.ReadMemStats(&after)
		return after.TotalAlloc - before.TotalAlloc
	}

	tl := obs.FromHBM(cfg, 1, 0)
	run(tl) // warm run grows the event buffers to steady-state capacity
	run(nil)

	untraced := allocBytes(func() { run(nil) })
	traced := allocBytes(func() { run(tl) })
	t.Logf("untraced %d B, traced %d B (%.2fx)", untraced, traced, float64(traced)/float64(untraced))
	if traced > 2*untraced {
		t.Errorf("traced run allocates %d B, more than 2x the untraced %d B", traced, untraced)
	}
}

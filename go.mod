module pimsim

go 1.22

// Microkernel: program the CRF by hand and drive the PIM units with raw
// DRAM commands — the lowest-level view of the architecture. The kernel
// streams data from the even banks through the in-flight ReLU into the
// odd banks, triggered purely by standard column reads and writes.
package main

import (
	"fmt"
	"log"

	"pimsim/internal/fp16"
	"pimsim/internal/hbm"
	"pimsim/internal/isa"
	"pimsim/internal/runtime"
)

func main() {
	cfg := hbm.PIMHBMConfig(1200)
	cfg.PseudoChannels = 1
	cfg.Functional = true
	dev, err := hbm.NewDevice(cfg)
	if err != nil {
		log.Fatal(err)
	}
	rt, err := runtime.New([]*hbm.Device{dev})
	if err != nil {
		log.Fatal(err)
	}

	// Assemble the microkernel and show its CRF image.
	src := `
		MOV(AAM_RELU) GRF_A, EVEN_BANK   ; 8 RD triggers: load + ReLU
		JUMP -1, 7
		MOV(AAM) ODD_BANK, GRF_A         ; 8 WR triggers: store
		JUMP -1, 7
		EXIT
	`
	prog, err := isa.Assemble(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("microkernel:")
	for i, in := range prog {
		fmt.Printf("  CRF[%d]  %#08x  %s\n", i, isa.MustEncode(in), in)
	}

	// Seed the even bank of unit 0 with a mix of signs.
	const row = 64
	input := fp16.FromFloat32s([]float32{
		-3, 1.5, -0.25, 7, -0, 2, -100, 0.5, 9, -9, 42, -4.75, 0.125, -0.125, 6, -6,
	})
	for col := uint32(0); col < 8; col++ {
		if err := rt.WriteBankSB(0, 0, row, col, input.Bytes()); err != nil {
			log.Fatal(err)
		}
	}

	// Mode entry, CRF programming, AB-PIM, triggers — all standard DRAM
	// commands a JEDEC controller can issue.
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	must(rt.EnterAB(0))
	must(rt.ProgramCRF(0, prog))
	must(rt.SetPIMMode(0, true))
	must(rt.OpenRow(0, row))
	for col := uint32(0); col < 8; col++ {
		must(rt.TriggerRD(0, 0, col)) // even-bank loads
	}
	rt.Fence(0)
	for col := uint32(0); col < 8; col++ {
		must(rt.TriggerWR(0, 1, col, nil)) // odd-bank stores
	}
	rt.Fence(0)
	must(rt.CloseRows(0))
	must(rt.SetPIMMode(0, false))
	must(rt.ExitToSB(0))

	// Read the odd bank back in plain SB mode.
	out, err := rt.ReadBankSB(0, 1, row, 3)
	if err != nil {
		log.Fatal(err)
	}
	result := fp16.VectorFromBytes(out)
	fmt.Printf("\ninput lanes:  %v\n", input)
	fmt.Printf("ReLU output:  %v\n", result)
	for i := range input {
		if want := fp16.ReLU(input[i]); result[i] != want {
			log.Fatalf("lane %d: %v, want %v", i, result[i], want)
		}
	}
	fmt.Printf("\nkernel completed in %d device cycles (%.0f ns)\n",
		rt.Now(0), rt.Cfg.Timing.CyclesToNs(rt.Now(0)))
}

// Serving: boot the online inference service over a pool of simulated
// PIM devices, send it real HTTP traffic, and watch the dynamic batcher
// pack concurrent requests one-per-pseudo-channel into single kernel
// launches. Everything runs in this process: the server owns two
// simulated shards, the load generator talks to it over a loopback
// socket exactly the way a remote client would.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"pimsim/internal/serve"
)

func main() {
	// An inference server: 2 simulated PIM shards x 4 pseudo channels,
	// the default model set resident in the banks, dynamic batching up to
	// the channel count with a 2ms flush window.
	s, err := serve.New(serve.Config{Shards: 2, Channels: 4})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Printf("pimserve up at %s\n", base)

	// One ad-hoc inference, the way curl would do it.
	spec := s.Models()[0]
	for _, m := range s.Models() {
		if m.Name == "rnnt-joint2" {
			spec = m
		}
	}
	input := make([]float64, spec.K)
	for i := range input {
		input[i] = 0.25
	}
	body, _ := json.Marshal(map[string]any{"model": spec.Name, "input": input})
	resp, err := http.Post(base+"/v1/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	var ir serve.InferResponse
	if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("single inference on %s (%dx%d): %d outputs, batch %d, %d device cycles on shard %d\n",
		spec.Name, spec.M, spec.K, len(ir.Output), ir.BatchSize, ir.KernelCycles, ir.Shard)

	// Now a burst: the closed-loop generator keeps 8 requests in flight,
	// so the batcher packs them 4-per-kernel (one per channel) and the
	// simulated device retires ~4x the requests per busy cycle.
	rep, err := serve.RunLoad(serve.LoadConfig{
		BaseURL: base, Model: spec.Name, K: spec.K,
		Concurrency: 8, Requests: 64,
		Verify: &spec, // check every output against the software oracle
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nclosed-loop burst:\n%s", rep)

	// Graceful shutdown: stop the listener, then drain the pipeline —
	// every accepted request still gets its response.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	if err := s.Close(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndrained cleanly: zero accepted requests dropped")
}

// Multi-tenancy: Section VIII observes that because the host controls the
// PIM operations of each memory channel independently, disjoint channel
// partitions can serve different tenants. Two tenants share one PIM-HBM
// system here — one runs GEMV, the other elementwise ADD — and each gets
// exactly the latency it would see running alone.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"pimsim/internal/blas"
	"pimsim/internal/fp16"
	"pimsim/internal/hbm"
	"pimsim/internal/runtime"
)

func randVec(rng *rand.Rand, n int) fp16.Vector {
	v := fp16.NewVector(n)
	for i := range v {
		v[i] = fp16.FromFloat32(float32(rng.NormFloat64()))
	}
	return v
}

func main() {
	cfg := hbm.PIMHBMConfig(1200)
	cfg.PseudoChannels = 8
	cfg.Functional = true
	dev, err := hbm.NewDevice(cfg)
	if err != nil {
		log.Fatal(err)
	}
	rt, err := runtime.New([]*hbm.Device{dev})
	if err != nil {
		log.Fatal(err)
	}

	tenants, err := rt.PartitionEven(2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("system: %d channels split into 2 tenants of %d channels each\n\n",
		rt.NumChannels(), tenants[0].NumChannels())

	rng := rand.New(rand.NewSource(5))
	const M, K = 256, 512
	W := randVec(rng, M*K)
	x := randVec(rng, K)
	const N = 100_000
	a := randVec(rng, N)
	b := randVec(rng, N)

	y, ksA, err := blas.PimGemv(tenants[0], W, M, K, x)
	if err != nil {
		log.Fatal(err)
	}
	c, ksB, err := blas.PimAdd(tenants[1], a, b, N)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("tenant A: GEMV %dx%d   -> %.2f us (%d triggers)\n",
		M, K, ksA.Ns(tenants[0])/1000, ksA.Triggers)
	fmt.Printf("tenant B: ADD  %d elems -> %.2f us (%d triggers)\n",
		N, ksB.Ns(tenants[1])/1000, ksB.Triggers)

	// Verify both against host references.
	wantY := blas.RefGemvPIMOrder(W, M, K, x, 8)
	wantC := blas.RefAdd(a, b)
	for i := range wantY {
		if y[i] != wantY[i] {
			log.Fatalf("tenant A corrupted: y[%d]", i)
		}
	}
	for i := range wantC {
		if c[i] != wantC[i] {
			log.Fatalf("tenant B corrupted: c[%d]", i)
		}
	}
	fmt.Println("\nboth tenants verified bit-exact; channel isolation held")
}

// Graph framework: the paper's headline software claim is that existing
// applications run on PIM without source changes (Fig. 6). This example
// builds one model graph — a two-layer MLP with a residual connection —
// and runs the *same graph object* on a host session and a PIM session.
// The PIM session's preprocessor offloads the memory-bound ops on its
// own; one op is additionally forced onto PIM as an explicit custom op
// (the Fig. 7 path).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"pimsim/internal/fp16"
	"pimsim/internal/hbm"
	"pimsim/internal/runtime"
	"pimsim/internal/tensor"
)

func randTensor(rng *rand.Rand, shape ...int) *tensor.Tensor {
	t := tensor.New(shape...)
	for i := range t.Data {
		t.Data[i] = fp16.FromFloat32(float32(rng.NormFloat64() * 0.2))
	}
	return t
}

func main() {
	rng := rand.New(rand.NewSource(9))
	const in, hid, out = 256, 192, 128

	// The application builds its graph once.
	var g tensor.Graph
	x := g.Input("x")
	h := g.MatVec("fc1", randTensor(rng, hid, in), x)
	h = g.Add("bias1", h, g.Const("b1", randTensor(rng, hid)))
	h = g.ReLU("act1", h)
	y := g.MatVec("fc2", randTensor(rng, out, hid), h)
	y = g.Add("residual", y, g.Const("skip", randTensor(rng, out))).PIM() // explicit custom op

	feeds := map[string]*tensor.Tensor{"x": randTensor(rng, in)}

	// Session 1: host only. The custom op would fail here, so fetch the
	// pre-residual node for the host run and add on the host side...
	// no — the point is the SAME graph: build the PIM system first.
	cfg := hbm.PIMHBMConfig(1200)
	cfg.PseudoChannels = 4
	cfg.Functional = true
	dev, err := hbm.NewDevice(cfg)
	if err != nil {
		log.Fatal(err)
	}
	rt, err := runtime.New([]*hbm.Device{dev})
	if err != nil {
		log.Fatal(err)
	}

	pimSess := tensor.NewPIMSession(rt)
	pimOut, err := pimSess.Run(feeds, y)
	if err != nil {
		log.Fatal(err)
	}

	// For the numeric comparison, run the graph minus the forced flag on
	// the host (a host session cannot execute an explicit PIM op — that is
	// the contract).
	y.ForcePIM = false
	hostOut, err := tensor.NewHostSession().Run(feeds, y)
	if err != nil {
		log.Fatal(err)
	}
	y.ForcePIM = true

	fmt.Println("same graph, two devices:")
	onPIM := 0
	for n, where := range pimSess.Placement {
		if where == "pim" {
			onPIM++
			fmt.Printf("  offloaded to PIM: %-8s %s\n", n.Kind, n.Name)
		}
	}
	fmt.Printf("%d of %d ops ran on the PIM units\n", onPIM, len(pimSess.Placement))

	d := fp16.MaxAbsDiff(pimOut[0].Data, hostOut[0].Data)
	fmt.Printf("host vs PIM output max divergence: %.4f (fp16 vs f32 accumulation)\n", d)
	if d > 0.1 {
		log.Fatal("outputs diverged beyond fp16 accumulation noise")
	}
	fmt.Printf("y[0..4] = %v\n", pimOut[0].Data[:5])
}

// LSTM inference: the paper's flagship application pattern. A two-layer
// LSTM (a miniature DeepSpeech2 tower) runs its matrix-vector work on the
// PIM units step by step, with the gate math on the host, and the hidden
// state trajectory is compared against the pure-host baseline. The second
// half evaluates the real DS2 configuration end to end on the full
// system model.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"pimsim/internal/blas"
	"pimsim/internal/fp16"
	"pimsim/internal/hbm"
	"pimsim/internal/models"
	"pimsim/internal/runtime"
	"pimsim/internal/sim"
)

func randVec(rng *rand.Rand, n int) fp16.Vector {
	v := fp16.NewVector(n)
	for i := range v {
		v[i] = fp16.FromFloat32(float32(rng.NormFloat64() * 0.3))
	}
	return v
}

func main() {
	// Part 1: functional two-layer LSTM on a small PIM system.
	cfg := hbm.PIMHBMConfig(1200)
	cfg.PseudoChannels = 2
	cfg.Functional = true
	dev, err := hbm.NewDevice(cfg)
	if err != nil {
		log.Fatal(err)
	}
	rt, err := runtime.New([]*hbm.Device{dev})
	if err != nil {
		log.Fatal(err)
	}

	const (
		X     = 64
		H     = 48
		steps = 6
	)
	rng := rand.New(rand.NewSource(11))
	layers := []blas.LSTMWeights{
		{Wx: randVec(rng, 4*H*X), Wh: randVec(rng, 4*H*H), B: randVec(rng, 4*H), X: X, H: H},
		{Wx: randVec(rng, 4*H*H), Wh: randVec(rng, 4*H*H), B: randVec(rng, 4*H), X: H, H: H},
	}

	inputs := make([]fp16.Vector, steps)
	for t := range inputs {
		inputs[t] = randVec(rng, X)
	}

	var totalCycles int64
	run := func(onPIM bool) []fp16.Vector {
		hs := make([]fp16.Vector, len(layers))
		cs := make([]fp16.Vector, len(layers))
		for i := range hs {
			hs[i] = fp16.NewVector(H)
			cs[i] = fp16.NewVector(H)
		}
		outs := make([]fp16.Vector, steps)
		for t := 0; t < steps; t++ {
			x := inputs[t]
			for i, w := range layers {
				var err error
				if onPIM {
					var ks blas.KernelStats
					hs[i], cs[i], ks, err = blas.PimLSTMCell(rt, w, x, hs[i], cs[i])
					totalCycles += ks.Cycles
				} else {
					hs[i], cs[i], err = blas.HostLSTMCell(w, x, hs[i], cs[i])
				}
				if err != nil {
					log.Fatal(err)
				}
				x = hs[i]
			}
			outs[t] = hs[len(layers)-1]
		}
		return outs
	}

	pimOut := run(true)
	hostOut := run(false)
	var maxDiff float64
	for t := range pimOut {
		if d := fp16.MaxAbsDiff(pimOut[t], hostOut[t]); d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("two-layer LSTM, %d steps: PIM vs host trajectory diverges by at most %.4f\n", steps, maxDiff)
	fmt.Printf("(FP16 PIM accumulation vs float32 host accumulation)\n")
	fmt.Printf("PIM GEMV cycles across the run: %d\n\n", totalCycles)

	// Part 2: the full DS2 model on the evaluated system.
	pimSys, err := sim.NewPIMSystem(hbm.VariantBase)
	if err != nil {
		log.Fatal(err)
	}
	hostSys := sim.NewHostSystem(1)
	for _, b := range []int{1, 2} {
		r, err := sim.EvalApp(pimSys, hostSys, models.DS2(), b)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("DS2 batch %d: PROC-HBM %.1f ms, PIM-HBM %.1f ms -> %.2fx (energy %.2fx)\n",
			b, r.HostNs/1e6, r.PimNs/1e6, r.Speedup, r.EnergyEffGain())
	}
	fmt.Println("paper: 3.5x at batch 1, 1.6x at batch 2, 3.2x energy efficiency")
}

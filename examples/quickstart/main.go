// Quickstart: build a PIM-HBM system, run y = W*x on the in-memory
// execution units, and check the result against the host — in about forty
// lines of API.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"pimsim/internal/blas"
	"pimsim/internal/fp16"
	"pimsim/internal/hbm"
	"pimsim/internal/runtime"
)

func main() {
	// A functional PIM-HBM stack (trimmed to 4 pseudo channels so the
	// example runs instantly).
	cfg := hbm.PIMHBMConfig(1200)
	cfg.PseudoChannels = 4
	cfg.Functional = true
	dev, err := hbm.NewDevice(cfg)
	if err != nil {
		log.Fatal(err)
	}
	rt, err := runtime.New([]*hbm.Device{dev})
	if err != nil {
		log.Fatal(err)
	}

	// A 512 x 1024 FP16 matrix and an input vector.
	const M, K = 512, 1024
	rng := rand.New(rand.NewSource(7))
	W := fp16.NewVector(M * K)
	x := fp16.NewVector(K)
	for i := range W {
		W[i] = fp16.FromFloat32(float32(rng.NormFloat64()))
	}
	for i := range x {
		x[i] = fp16.FromFloat32(float32(rng.NormFloat64()))
	}

	// One call: the PIM BLAS lays W out across the banks, programs the
	// microkernel, streams the DRAM commands, and reads the result back.
	y, stats, err := blas.PimGemv(rt, W, M, K, x)
	if err != nil {
		log.Fatal(err)
	}

	want := blas.RefGemvPIMOrder(W, M, K, x, 8)
	for i := range want {
		if y[i] != want[i] {
			log.Fatalf("y[%d] = %v, want %v", i, y[i], want[i])
		}
	}

	fmt.Printf("GEMV %dx%d on %d PIM units across %d channels\n",
		M, K, cfg.PIMUnits*cfg.PseudoChannels, cfg.PseudoChannels)
	fmt.Printf("  %d column-command triggers, %d fences\n", stats.Triggers, stats.Fences)
	fmt.Printf("  kernel time: %.2f us\n", stats.Ns(rt)/1000)
	fmt.Printf("  result: bit-exact against the host reference (%d outputs)\n", M)
	fmt.Printf("  y[0..4] = %v\n", y[:5])
	fmt.Println("\nnext: examples/serving runs an HTTP inference service with")
	fmt.Println("dynamic batching over a pool of these simulated devices")
}

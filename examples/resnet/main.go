// CV inference: ResNet-50 and AlexNet on the PIM system. ResNet is the
// paper's "completeness" case — compute-bound convolutions dominate, the
// preprocessor offloads nothing, and PIM-HBM exactly matches HBM (a
// drop-in replacement must never hurt). AlexNet's large fully connected
// layers do offload and buy a modest end-to-end gain.
package main

import (
	"fmt"
	"log"

	"pimsim/internal/hbm"
	"pimsim/internal/models"
	"pimsim/internal/sim"
)

func main() {
	pimSys, err := sim.NewPIMSystem(hbm.VariantBase)
	if err != nil {
		log.Fatal(err)
	}
	hostSys := sim.NewHostSystem(1)

	for _, m := range []models.Model{models.ResNet50(), models.AlexNet()} {
		r, err := sim.EvalApp(pimSys, hostSys, m, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (batch 1)\n", m.Name)
		fmt.Printf("  PROC-HBM: %6.2f ms   PIM-HBM: %6.2f ms   speedup %.2fx\n",
			r.HostNs/1e6, r.PimNs/1e6, r.Speedup)

		var convNs, fcNs float64
		offloaded := 0
		for _, lt := range r.Layers {
			switch lt.Kind {
			case models.Conv:
				convNs += lt.HostNs
			case models.FC:
				fcNs += lt.HostNs
			}
			if lt.OnPIM {
				offloaded++
			}
		}
		fmt.Printf("  host time split: %.0f%% convolution, %.0f%% fully connected; %d layers offloaded\n\n",
			100*convNs/r.HostNs, 100*fcNs/r.HostNs, offloaded)
	}
	fmt.Println("paper: ResNet-50 1.0x (PIM does not hurt compute-bound apps), AlexNet 1.4x")
}

GO ?= go

.PHONY: all build vet fmt-check test race bench bench-check race-goldens bench-serve bench-serve-check serve-smoke model-smoke trace-smoke chaos qos-drill slo-drill

all: build vet test

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench measures the simulator's own hot paths (not simulated performance)
# and records ns/op, MB/s and allocs/op in BENCH_gemv.json. The README's
# "Simulator performance" table is regenerated from this file.
bench:
	$(GO) test -run '^$$' -bench 'Gemv$$' -benchmem . | $(GO) run ./tools/benchjson -out BENCH_gemv.json

# bench-check re-runs the Gemv benchmarks and fails if any regressed past
# 2.5x the checked-in BENCH_gemv.json baseline (time or bytes/op). The
# factor absorbs machine-to-machine noise; it exists to catch a dropped
# fast path or an allocation blow-up, not percent-level drift.
bench-check:
	$(GO) test -run '^$$' -bench 'Gemv$$' -benchtime 2x -benchmem . | $(GO) run ./tools/benchjson -check BENCH_gemv.json

# race-goldens proves engine determinism under the race detector: serial
# vs parallel per-pCH execution, GOMAXPROCS 1/2/N, with tracing and fault
# injection armed, must be bit-for-bit identical (see DESIGN.md). It also
# runs the full-budget aggregate/brute-force oracle fuzz under -race: the
# O(1) timing aggregates must agree with the all-bank scan on every
# verdict across 10k fuzzed command streams.
race-goldens:
	$(GO) test -race -count=2 -run 'TestGolden' .
	$(GO) test -race -run 'TestAggregateEarliestMatchesBruteForce' ./internal/hbm/

# bench-serve runs both serving A/Bs through cmd/pimload and records
# throughput, latency quantiles and the gains in BENCH_serve.json: the
# GEMV batching A/B (dynamic batching vs batch-size-1) and the sequence
# A/B (continuous batching vs one-sequence-at-a-time on the same pool).
# The README's "Serving" tables are regenerated from this file. Fails if
# either gain ever drops below 2x, or if the batched run violates the
# (generous) SLO gate — the machine-readable verdict line documents the
# margin in CI logs either way.
bench-serve:
	$(GO) run ./cmd/pimload -compare -bench -requests 192 -conc 8 -min-gain 2 \
	    -slo 'p99=500ms,avail=0.99' > serve_bench.txt
	$(GO) run ./cmd/pimload -seq -compare -bench -model ds2-small \
	    -seqs 24 -conc 8 -seqlen-dist uniform:8:16 -verify=false -min-gain 2 >> serve_bench.txt
	$(GO) run ./tools/benchjson -out BENCH_serve.json < serve_bench.txt
	@rm -f serve_bench.txt

# bench-serve-check re-runs both serving A/Bs and fails if throughput
# (req/s, seq/s), a latency quantile (*_us) or ns/op regressed past 2.5x
# the checked-in BENCH_serve.json baseline. Rates gate downward,
# latencies upward; counts and gain factors are not gated here (each gain
# has its own hard -min-gain floor inside cmd/pimload). Both A/Bs must
# run: benchjson -check fails on baseline entries missing from the run.
bench-serve-check:
	@{ $(GO) run ./cmd/pimload -compare -bench -requests 192 -conc 8 -min-gain 2 && \
	   $(GO) run ./cmd/pimload -seq -compare -bench -model ds2-small \
	       -seqs 24 -conc 8 -seqlen-dist uniform:8:16 -verify=false -min-gain 2; } \
	| $(GO) run ./tools/benchjson -check BENCH_serve.json

# serve-smoke boots the real pimserve binary on a random port and checks
# the HTTP taxonomy, backpressure and graceful shutdown over TCP.
serve-smoke:
	bash scripts/serve_smoke.sh

# model-smoke boots pimserve with the DS2-small LSTM stack resident on a
# 2-shard pool and drives mixed-length sequences through the continuous
# batcher over TCP, every step verified against the host oracle — zero
# wrong answers or the smoke fails. Also checks the sequence HTTP
# taxonomy and the /v1/models inventory.
model-smoke:
	bash scripts/model_smoke.sh

# trace-smoke exercises the observability stack end to end: a pimsim
# -timeline export, a traced pimserve under load (live /debug/trace,
# X-Request-ID, structured access logs, spans.json and slow-request
# dumps), with every artifact schema-validated by tools/tracecheck.
# Set OUT_DIR to keep the artifacts (CI uploads them).
trace-smoke:
	bash scripts/trace_smoke.sh

# chaos runs the three-phase fault drill from docs/FAULTS.md against both
# profiles: fault-free ECC-on baseline, verified load under injection
# (zero wrong answers or the drill fails), post-recovery throughput floor
# against baseline. Deterministic: same seed, same fault pattern. The
# hard profile keeps injecting heavy spikes, flips and occasional
# uncorrectables after the outage revives, so its floor is lower — the
# continuing faults are the environment, not a recovery failure.
chaos:
	$(GO) run ./cmd/pimload -chaos -fault-profile chaos-mild -fault-seed 42 -requests 96 -conc 8
	$(GO) run ./cmd/pimload -chaos -fault-profile chaos-hard -fault-seed 42 -requests 96 -conc 8 -max-err-frac 0.6 -recover-frac 0.75

# qos-drill proves the multi-tenant admission-control story from
# docs/SERVING.md: the QoS unit tests (exact WFQ shares, priority
# displacement, EDF expiry, hedged dispatch) under the race detector,
# then the four-scenario matrix (overload / bursty / mixed-priority /
# slow-tenant) through cmd/pimload against live in-process servers —
# every admission count pinned exactly, per-tenant quantiles written to
# qos_tenants.json (CI uploads it).
qos-drill:
	$(GO) test -race -count=1 -run 'QoS|FairQueue|Tenant|DeadlineExpired|Hedged' ./internal/serve
	$(GO) run ./cmd/pimload -qos -scenario all -out qos_tenants.json

# slo-drill proves the SLO story from docs/SLO.md deterministically and
# under the race detector: the windowed-metrics layer (ring rotation,
# fake clocks, Prometheus round-trip), the burn-rate state machine and
# exemplar ring, the fake-clock burn/recover drill matrix, and the
# closed hedge-delay control loop end to end through internal/serve.
# Then scripts/slo_drill.sh boots a real pimserve with objectives armed,
# drives load, and writes the live /debug/ops document to slo_ops.json
# (CI uploads it) after asserting it is well-formed.
slo-drill:
	$(GO) test -race -count=1 ./internal/metrics ./internal/slo
	$(GO) test -race -count=1 -run 'SLO|DebugOps|DebugSlow|Window' ./internal/serve
	bash scripts/slo_drill.sh slo_ops.json

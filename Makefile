GO ?= go

.PHONY: all build vet fmt-check test race bench bench-check race-goldens bench-serve bench-serve-check serve-smoke trace-smoke chaos

all: build vet test

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench measures the simulator's own hot paths (not simulated performance)
# and records ns/op, MB/s and allocs/op in BENCH_gemv.json. The README's
# "Simulator performance" table is regenerated from this file.
bench:
	$(GO) test -run '^$$' -bench 'Gemv$$' -benchmem . | $(GO) run ./tools/benchjson -out BENCH_gemv.json

# bench-check re-runs the Gemv benchmarks and fails if any regressed past
# 2.5x the checked-in BENCH_gemv.json baseline (time or bytes/op). The
# factor absorbs machine-to-machine noise; it exists to catch a dropped
# fast path or an allocation blow-up, not percent-level drift.
bench-check:
	$(GO) test -run '^$$' -bench 'Gemv$$' -benchtime 2x -benchmem . | $(GO) run ./tools/benchjson -check BENCH_gemv.json

# race-goldens proves engine determinism under the race detector: serial
# vs parallel per-pCH execution, GOMAXPROCS 1/2/N, with tracing and fault
# injection armed, must be bit-for-bit identical (see DESIGN.md). It also
# runs the full-budget aggregate/brute-force oracle fuzz under -race: the
# O(1) timing aggregates must agree with the all-bank scan on every
# verdict across 10k fuzzed command streams.
race-goldens:
	$(GO) test -race -count=2 -run 'TestGolden' .
	$(GO) test -race -run 'TestAggregateEarliestMatchesBruteForce' ./internal/hbm/

# bench-serve runs the serving A/B (dynamic batching vs batch-size-1 at
# equal shard count) through cmd/pimload and records throughput, latency
# quantiles and the batching gain in BENCH_serve.json. The README's
# "Serving" table is regenerated from this file. Fails if the gain ever
# drops below 2x.
bench-serve:
	$(GO) run ./cmd/pimload -compare -bench -requests 192 -conc 8 -min-gain 2 > serve_bench.txt
	$(GO) run ./tools/benchjson -out BENCH_serve.json < serve_bench.txt
	@rm -f serve_bench.txt

# bench-serve-check re-runs the serving A/B and fails if throughput
# (req/s), a latency quantile (p50/p95/p99_us) or ns/op regressed past
# 2.5x the checked-in BENCH_serve.json baseline. Rates gate downward,
# latencies upward; counts and gain factors are not gated here (the gain
# has its own hard -min-gain floor inside cmd/pimload).
bench-serve-check:
	$(GO) run ./cmd/pimload -compare -bench -requests 192 -conc 8 -min-gain 2 | $(GO) run ./tools/benchjson -check BENCH_serve.json

# serve-smoke boots the real pimserve binary on a random port and checks
# the HTTP taxonomy, backpressure and graceful shutdown over TCP.
serve-smoke:
	bash scripts/serve_smoke.sh

# trace-smoke exercises the observability stack end to end: a pimsim
# -timeline export, a traced pimserve under load (live /debug/trace,
# X-Request-ID, structured access logs, spans.json and slow-request
# dumps), with every artifact schema-validated by tools/tracecheck.
# Set OUT_DIR to keep the artifacts (CI uploads them).
trace-smoke:
	bash scripts/trace_smoke.sh

# chaos runs the three-phase fault drill from docs/FAULTS.md against both
# profiles: fault-free ECC-on baseline, verified load under injection
# (zero wrong answers or the drill fails), post-recovery throughput floor
# against baseline. Deterministic: same seed, same fault pattern. The
# hard profile keeps injecting heavy spikes, flips and occasional
# uncorrectables after the outage revives, so its floor is lower — the
# continuing faults are the environment, not a recovery failure.
chaos:
	$(GO) run ./cmd/pimload -chaos -fault-profile chaos-mild -fault-seed 42 -requests 96 -conc 8
	$(GO) run ./cmd/pimload -chaos -fault-profile chaos-hard -fault-seed 42 -requests 96 -conc 8 -max-err-frac 0.6 -recover-frac 0.75

GO ?= go

.PHONY: all build vet fmt-check test race bench bench-serve serve-smoke

all: build vet test

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench measures the simulator's own hot paths (not simulated performance)
# and records ns/op, MB/s and allocs/op in BENCH_gemv.json. The README's
# "Simulator performance" table is regenerated from this file.
bench:
	$(GO) test -run '^$$' -bench 'Gemv$$' -benchmem . | $(GO) run ./tools/benchjson -out BENCH_gemv.json

# bench-serve runs the serving A/B (dynamic batching vs batch-size-1 at
# equal shard count) through cmd/pimload and records throughput, latency
# quantiles and the batching gain in BENCH_serve.json. The README's
# "Serving" table is regenerated from this file. Fails if the gain ever
# drops below 2x.
bench-serve:
	$(GO) run ./cmd/pimload -compare -bench -requests 192 -conc 8 -min-gain 2 > serve_bench.txt
	$(GO) run ./tools/benchjson -out BENCH_serve.json < serve_bench.txt
	@rm -f serve_bench.txt

# serve-smoke boots the real pimserve binary on a random port and checks
# the HTTP taxonomy, backpressure and graceful shutdown over TCP.
serve-smoke:
	bash scripts/serve_smoke.sh

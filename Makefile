GO ?= go

.PHONY: all build vet test race bench

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench measures the simulator's own hot paths (not simulated performance)
# and records ns/op, MB/s and allocs/op in BENCH_gemv.json. The README's
# "Simulator performance" table is regenerated from this file.
bench:
	$(GO) test -run '^$$' -bench 'Gemv$$' -benchmem . | $(GO) run ./tools/benchjson -out BENCH_gemv.json
